/**
 * @file
 * Grid definition and deterministic expansion for the experiment
 * service.
 *
 * A GridOptions is the full description of a sweep grid — the same
 * knobs dapsim_sweep takes on its command line. expandGrid() turns it
 * into the ordered list of fully-specified jobs (arch-major, then
 * capacity, workload, policy — the historical dapsim_sweep order), and
 * the expansion is a pure function of the options and the build, so a
 * worker that re-expands a persisted grid reproduces the exact same
 * JobSpecs, job ids and group keys. The `dapsim.expq.v1` store records
 * every job's content hash at submit time and refuses to run when a
 * re-expansion disagrees (a different build or profile table would
 * silently change what "job 17" means).
 *
 * GridOptions round-trips through a canonical JSON encoding
 * (encodeGridOptions / decodeGridOptions) for the store manifest.
 */

#ifndef DAPSIM_EXPD_GRID_HH
#define DAPSIM_EXPD_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_reader.hh"
#include "exp/job.hh"

namespace dapsim::expd
{

/** Everything that defines a sweep grid (mirrors dapsim_sweep flags). */
struct GridOptions
{
    std::vector<std::string> archs{"sectored"};
    std::vector<std::string> policies{"baseline", "dap"};
    std::vector<std::string> workloads{"sensitive"};
    std::vector<std::uint64_t> capacitiesMb{0}; // 0 = preset default
    std::uint32_t cores = 8;
    std::uint64_t instr = 120'000;
    std::uint64_t seed = 0;
    /** Warm-up accesses per core; 0 = the preset-derived default. */
    std::uint64_t warmup = 0;
    bool remote = false;
    double remoteScale = 4.0;
    double remoteLatencyNs = 120.0;
    std::uint32_t remoteOutstanding = 32;
    /** Fidelity mode name ("exact", "sampled", "analytic"); validated
     *  at submit. Reduced-fidelity runs carry a "fidelity" knob so
     *  result rows and job ids stay distinguishable. */
    std::string fidelity = "exact";
    /** Sampled-mode knobs; 0 keeps FidelityConfig defaults. */
    std::uint64_t fidelityDetail = 0;
    std::uint64_t fidelityPeriod = 0;
};

/** One expanded grid point: the runnable spec plus its identity. */
struct ExpandedJob
{
    exp::JobSpec spec;
    std::string id;    ///< exp::jobId content hash
    std::string group; ///< warmup-fork group key ("" = unforkable)
};

/** Split a comma-separated list; fatal() on an empty result. */
std::vector<std::string> splitList(const std::string &s);

/** Split a --workload list, folding spec key=value continuations back
 *  into their spec (see dapsim_sweep --workload docs). */
std::vector<std::string> splitWorkloadList(const std::string &s);

/** Base SystemConfig for an arch name + capacity; fatal() on unknown
 *  arch names (reject before submission, like other config errors). */
SystemConfig archConfig(const std::string &arch,
                        std::uint64_t capacity_mb);

/**
 * Expand @p opt into grid order. Unknown workload names become
 * custom error jobs (their grid points surface as failed rows instead
 * of killing the sweep); malformed workload-engine specs fatal()
 * before anything runs. Custom error jobs get group "" and an
 * id derived from their label.
 */
std::vector<ExpandedJob> expandGrid(const GridOptions &opt);

/** Canonical JSON object encoding (the manifest's "options" field). */
std::string encodeGridOptions(const GridOptions &opt);

/** Parse encodeGridOptions() output; throws json::JsonError on
 *  malformed or missing fields. */
GridOptions decodeGridOptions(const json::Value &v);

} // namespace dapsim::expd

#endif // DAPSIM_EXPD_GRID_HH
