#include "expd/ledger.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ckpt/serializer.hh"
#include "common/json_writer.hh"

#include <sys/time.h>

namespace dapsim::expd
{

double
wallSeconds()
{
    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

namespace
{

constexpr const char *kCrcMarker = ",\"crc\":\"";

std::uint32_t
payloadCrc(const std::string &payload)
{
    return ckpt::crc32(
        reinterpret_cast<const std::uint8_t *>(payload.data()),
        payload.size());
}

} // namespace

std::string
sealRecord(const std::string &payload)
{
    if (payload.size() < 2 || payload.front() != '{' ||
        payload.back() != '}')
        throw StoreError("expq: sealRecord needs a JSON object");
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", payloadCrc(payload));
    std::string out = payload;
    out.pop_back(); // final '}'
    out += kCrcMarker;
    out += crc;
    out += "\"}\n";
    return out;
}

json::Value
parseRecord(const std::string &line)
{
    // The marker's unescaped quotes cannot occur inside a JSON string
    // value, so the last occurrence is always the seal.
    const std::size_t at = line.rfind(kCrcMarker);
    const std::size_t marker_len = std::char_traits<char>::length(
        kCrcMarker);
    if (at == std::string::npos ||
        line.size() != at + marker_len + 8 + 2 ||
        line.compare(line.size() - 2, 2, "\"}") != 0)
        throw StoreError("expq: record has no CRC seal");
    const std::string payload = line.substr(0, at) + "}";
    char expect[16];
    std::snprintf(expect, sizeof(expect), "%08x", payloadCrc(payload));
    if (line.compare(at + marker_len, 8, expect) != 0)
        throw StoreError("expq: record CRC mismatch");
    return json::parse(payload);
}

LedgerContents
readLedgerText(const std::string &text, const std::string &what)
{
    LedgerContents out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool unterminated = nl == std::string::npos;
        const std::string line =
            text.substr(pos, unterminated ? std::string::npos
                                          : nl - pos);
        pos = unterminated ? text.size() : nl + 1;
        if (line.empty())
            continue;
        const bool is_last = pos >= text.size();
        try {
            out.records.push_back(parseRecord(line));
        } catch (const std::exception &e) {
            if (is_last) {
                // O_APPEND + single-write framing means only the tail
                // can legitimately be torn.
                out.droppedTornTail = true;
                return out;
            }
            throw StoreError(what + ": corrupt mid-ledger record (" +
                             e.what() + ")");
        }
    }
    return out;
}

LedgerContents
readLedgerFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream text;
    text << in.rdbuf();
    return readLedgerText(text.str(), path);
}

std::string
gridRecord(const GridOptions &opt, std::size_t jobs)
{
    // encodeGridOptions() already produces a canonical object; embed
    // it raw by assembling around it.
    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchemaId);
    w.key("type").value("grid");
    w.key("jobs").value(static_cast<std::uint64_t>(jobs));
    w.endObject();
    std::string head = w.str();
    head.pop_back(); // '}'
    head += ",\"options\":" + encodeGridOptions(opt) + "}";
    return sealRecord(head);
}

std::string
jobRecord(const ExpandedJob &job, std::size_t index)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("job");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("id").value(job.id);
    w.key("group").value(job.group);
    w.key("label").value(job.spec.displayLabel());
    w.endObject();
    return sealRecord(w.str());
}

std::string
startRecord(std::size_t index, const std::string &worker)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("start");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("worker").value(worker);
    w.key("t").value(wallSeconds());
    w.endObject();
    return sealRecord(w.str());
}

std::string
doneRecord(std::size_t index, const std::string &worker,
           const std::string &row)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("done");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("worker").value(worker);
    w.key("t").value(wallSeconds());
    w.key("row").value(row);
    w.endObject();
    return sealRecord(w.str());
}

std::string
failedRecord(std::size_t index, const std::string &worker,
             const std::string &error, const std::string &row)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("failed");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("worker").value(worker);
    w.key("t").value(wallSeconds());
    w.key("error").value(error);
    w.key("row").value(row);
    w.endObject();
    return sealRecord(w.str());
}

std::string
retryRecord(std::size_t index)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("retry");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.endObject();
    return sealRecord(w.str());
}

std::string
warmupRecord(const std::string &group, const std::string &worker,
             bool executed)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("type").value("warmup");
    w.key("group").value(group);
    w.key("worker").value(worker);
    w.key("executed").value(executed);
    w.endObject();
    return sealRecord(w.str());
}

} // namespace dapsim::expd
