/**
 * @file
 * `dapsim.expq.v1` ledger records: framing, CRC sealing, and the
 * record vocabulary of the persistent experiment store.
 *
 * A ledger is a sequence of newline-terminated JSON objects, each
 * sealed with a CRC32 of its own bytes. Two physical kinds exist:
 *
 *  - The manifest (`grid.jsonl`): written once, atomically, at submit
 *    time. One `grid` record (schema id, encoded GridOptions, job
 *    count) followed by one `job` record per expanded grid point
 *    carrying its index, content-hash id, warmup group and label.
 *  - Event ledgers (`events/events-<writer>.jsonl`): append-only,
 *    fsync'd per record, one file per writer so concurrent workers
 *    never interleave bytes. Records: `start`, `done` (embedding the
 *    verbatim result row), `failed`, `retry`, `warmup`.
 *
 * Torn-write policy: a crash can corrupt only the final record of an
 * event ledger (O_APPEND + one write(2) per record). readLedger()
 * therefore DROPS a trailing record that fails to parse or checksum,
 * but THROWS on a bad record with valid records after it — that is
 * real corruption, not a crash artifact.
 */

#ifndef DAPSIM_EXPD_LEDGER_HH
#define DAPSIM_EXPD_LEDGER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json_reader.hh"
#include "expd/grid.hh"

namespace dapsim::expd
{

/** Schema id stamped into every manifest. */
inline constexpr const char *kSchemaId = "dapsim.expq.v1";

/** Wall-clock seconds since the epoch. Stamped into event records as
 *  "t" for status/ETA display; never used for anything that must be
 *  deterministic (result rows carry no timestamps). */
double wallSeconds();

/** Any store/ledger failure (format, CRC, schema, manifest drift). */
class StoreError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Seal @p payload — a complete JSON object WITHOUT a crc member — by
 * splicing `,"crc":"<8 hex>"` before the closing brace, where the CRC
 * is computed over the payload bytes. Returns the sealed record with a
 * trailing newline, ready to append.
 */
std::string sealRecord(const std::string &payload);

/**
 * Verify and parse one sealed record (without its newline). Throws
 * StoreError on a missing/mismatched CRC, json::JsonError on
 * malformed JSON.
 */
json::Value parseRecord(const std::string &line);

/** readLedger outcome. */
struct LedgerContents
{
    std::vector<json::Value> records;
    /** True when a torn trailing record was dropped. */
    bool droppedTornTail = false;
};

/**
 * Parse ledger @p text (for diagnostics, @p what names the source).
 * Implements the torn-write policy described in the file comment.
 */
LedgerContents readLedgerText(const std::string &text,
                              const std::string &what);

/** readLedgerText over a file; a missing file is an empty ledger. */
LedgerContents readLedgerFile(const std::string &path);

// --- Record builders (all return sealed, newline-terminated lines) ---

/** Manifest head: schema, options, job count. */
std::string gridRecord(const GridOptions &opt, std::size_t jobs);

/** Manifest body: one expanded grid point. */
std::string jobRecord(const ExpandedJob &job, std::size_t index);

/** A worker leased job @p index and began executing it. */
std::string startRecord(std::size_t index, const std::string &worker);

/** Job @p index completed; @p row is the verbatim jobResultToJson()
 *  line (embedded escaped, so merge can reproduce it byte-exactly). */
std::string doneRecord(std::size_t index, const std::string &worker,
                       const std::string &row);

/** Job @p index failed; @p row is the failed result's verbatim row
 *  (kept so merge output stays rectangular), @p error the reason. */
std::string failedRecord(std::size_t index, const std::string &worker,
                         const std::string &error,
                         const std::string &row);

/** A `retry-failed` pass cleared earlier failures of job @p index. */
std::string retryRecord(std::size_t index);

/** Warmup checkpoint activity for dedup accounting: @p executed when
 *  this worker simulated the group's warmup, false when it reused a
 *  fleet checkpoint or waited on another creator. */
std::string warmupRecord(const std::string &group,
                         const std::string &worker, bool executed);

} // namespace dapsim::expd

#endif // DAPSIM_EXPD_LEDGER_HH
