#include "expd/worker.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "common/fsio.hh"
#include "exp/result_sink.hh"
#include "exp/warmup_cache.hh"

namespace dapsim::expd
{

WorkerStats
runWorker(const WorkerOptions &opt)
{
    if (opt.shardCount == 0 || opt.shardIndex >= opt.shardCount)
        throw StoreError("expq: worker shard must be i/N with i < N");

    const Store store = Store::open(opt.storeDir);
    // std::string("w") + ... rather than "w" + ...: the const char*
    // overload routes through insert(), which GCC 12's -Wrestrict
    // misanalyzes at -O3 (false positive; CI builds with -Werror).
    const std::string worker_id =
        opt.workerId.empty() ? std::string("w") + std::to_string(::getpid())
                             : opt.workerId;
    const Replay before = store.replay();
    exp::WarmupCache warmups(store.ckptDir(), opt.leaseTtlSec);
    fsio::AppendFile events(store.eventsPath(worker_id));

    // Heartbeat thread: keeps the currently-held lease fresh so slow
    // jobs are not reaped out from under a healthy worker.
    std::atomic<long long> held{-1};
    std::atomic<bool> stop{false};
    std::thread heartbeat([&] {
        const auto step = std::chrono::milliseconds(100);
        auto next = std::chrono::steady_clock::now();
        while (!stop.load()) {
            std::this_thread::sleep_for(step);
            if (std::chrono::steady_clock::now() < next)
                continue;
            const long long i = held.load();
            if (i >= 0)
                store.heartbeat(static_cast<std::size_t>(i));
            next = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           opt.leaseTtlSec / 4.0));
        }
    });

    WorkerStats stats;
    const std::size_t n = store.jobs().size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i % opt.shardCount != opt.shardIndex)
            continue;
        if (opt.maxJobs != 0 &&
            stats.executed + stats.failed >= opt.maxJobs)
            break;
        if (before.jobs[i].state == JobState::State::Done) {
            ++stats.skipped;
            continue;
        }
        if (!store.tryLease(i, opt.leaseTtlSec)) {
            // Live owner elsewhere. If it dies, a later pass (or
            // `resume`) reaps the stale lease; if it finishes, the
            // done event is already durable. Either way skipping is
            // safe — and even a lost race that re-runs the job writes
            // a bit-identical row.
            ++stats.skipped;
            continue;
        }
        held.store(static_cast<long long>(i));

        const ExpandedJob &job = store.jobs()[i];
        try {
            events.append(startRecord(i, worker_id));

            const ckpt::CheckpointView *fork = nullptr;
            exp::WarmupCache::Result shared;
            if (!job.group.empty()) {
                shared = warmups.ensure(job.spec);
                fork = shared.ckpt ? &shared.ckpt : nullptr;
                if (shared.executed || shared.reused) {
                    events.append(warmupRecord(job.group, worker_id,
                                               shared.executed));
                    stats.warmupsExecuted += shared.executed ? 1 : 0;
                    stats.warmupsReused += shared.reused ? 1 : 0;
                }
            }

            exp::JobResult r = exp::runJob(job.spec, i, fork);
            const std::string row = exp::jobResultToJson(r);
            if (r.ok) {
                events.append(doneRecord(i, worker_id, row));
                ++stats.executed;
            } else {
                fsio::atomicWriteFile(store.stderrPath(i),
                                      r.error + "\n");
                events.append(
                    failedRecord(i, worker_id, r.error, row));
                ++stats.failed;
            }
            if (opt.progress) {
                std::fprintf(stderr, "[%s] job %zu %s %s\n",
                             worker_id.c_str(), i,
                             job.spec.displayLabel().c_str(),
                             r.ok ? "done"
                                  : ("FAILED: " + r.error).c_str());
                std::fflush(stderr);
            }
        } catch (...) {
            held.store(-1);
            store.releaseLease(i);
            stop.store(true);
            heartbeat.join();
            throw;
        }
        held.store(-1);
        store.releaseLease(i);
    }

    stop.store(true);
    heartbeat.join();
    return stats;
}

} // namespace dapsim::expd
