#include "expd/grid.hh"

#include <stdexcept>

#include "common/json_writer.hh"
#include "common/log.hh"
#include "sim/presets.hh"
#include "workload/compose.hh"
#include "workload/spec.hh"

namespace dapsim::expd
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    if (out.empty())
        fatal("empty list argument");
    return out;
}

std::vector<std::string>
splitWorkloadList(const std::string &s)
{
    // Workload-engine specs contain commas themselves
    // (zipf:skew=0.99,fp=64M): after the plain comma split, any token
    // that is a key=value continuation — '=' before any ':' — folds
    // back into the preceding element.
    std::vector<std::string> out;
    for (const auto &tok : splitList(s)) {
        const std::size_t eq = tok.find('=');
        const std::size_t colon = tok.find(':');
        const bool continuation =
            eq != std::string::npos &&
            (colon == std::string::npos || eq < colon);
        if (continuation && !out.empty())
            out.back() += "," + tok;
        else if (continuation)
            fatal("--workload: '" + tok +
                  "' continues a spec but no spec precedes it");
        else
            out.push_back(tok);
    }
    return out;
}

SystemConfig
archConfig(const std::string &arch, std::uint64_t capacity_mb)
{
    SystemConfig cfg;
    if (arch == "sectored") {
        cfg = presets::sectoredSystem8();
        if (capacity_mb)
            cfg.sectored.capacityBytes = capacity_mb * kMiB;
    } else if (arch == "alloy") {
        cfg = presets::alloySystem8();
        if (capacity_mb)
            cfg.alloy.capacityBytes = capacity_mb * kMiB;
    } else if (arch == "edram") {
        cfg = presets::edramSystem8(capacity_mb ? capacity_mb : 4);
    } else {
        fatal("unknown arch: " + arch);
    }
    return cfg;
}

namespace
{

/** A grid workload: a resolved profile, a composed workload-engine
 *  spec, or an unknown name kept so its grid points surface as error
 *  records instead of killing the whole sweep. */
struct GridWorkload
{
    WorkloadProfile profile;
    bool known = true;
    bool isSpec = false;
    workload::ComposedMix composed; ///< when isSpec
};

std::vector<GridWorkload>
resolveWorkloads(const std::vector<std::string> &names,
                 std::uint32_t cores)
{
    std::vector<GridWorkload> out;
    auto push = [&out](const WorkloadProfile &w) {
        out.push_back({w, true, false, {}});
    };
    for (const auto &name : names) {
        if (name == "all") {
            for (const auto &w : allWorkloads())
                push(w);
        } else if (name == "sensitive") {
            for (const auto &w : bandwidthSensitiveWorkloads())
                push(w);
        } else if (name == "insensitive") {
            for (const auto &w : bandwidthInsensitiveWorkloads())
                push(w);
        } else {
            bool found = false;
            for (const auto &w : allWorkloads()) {
                if (w.name == name) {
                    push(w);
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            if (workload::looksLikeSpec(name)) {
                // Malformed specs fatal() here, before any job runs.
                GridWorkload gw;
                gw.known = true;
                gw.isSpec = true;
                gw.composed = workload::composeWorkload(name, cores);
                out.push_back(std::move(gw));
            } else {
                WorkloadProfile unknown;
                unknown.name = name;
                out.push_back({unknown, false, false, {}});
            }
        }
    }
    return out;
}

} // namespace

std::vector<ExpandedJob>
expandGrid(const GridOptions &opt)
{
    const std::vector<GridWorkload> workloads =
        resolveWorkloads(opt.workloads, opt.cores);

    std::vector<ExpandedJob> out;
    for (const auto &arch : opt.archs) {
        for (std::uint64_t cap : opt.capacitiesMb) {
            SystemConfig cfg = archConfig(arch, cap);
            cfg.numCores = opt.cores;
            if (opt.warmup)
                cfg.warmupAccessesPerCore = opt.warmup;
            if (opt.remote) {
                cfg.remote.enabled = true;
                cfg.remote.bwScaleFactor = opt.remoteScale;
                cfg.remote.addLatencyNs = opt.remoteLatencyNs;
                cfg.remote.maxOutstanding = opt.remoteOutstanding;
            }
            if (!fidelityModeFromName(opt.fidelity,
                                      cfg.fidelity.mode))
                fatal("unknown fidelity: " + opt.fidelity);
            if (opt.fidelityDetail)
                cfg.fidelity.detailInstr = opt.fidelityDetail;
            if (opt.fidelityPeriod)
                cfg.fidelity.periodInstr = opt.fidelityPeriod;
            for (const auto &gw : workloads) {
                for (const auto &policy : opt.policies) {
                    exp::JobSpec spec;
                    spec.cfg = cfg;
                    spec.policy = exp::policyKindFromName(policy);
                    spec.instr = opt.instr;
                    spec.seedSalt = opt.seed;
                    spec.knobs["arch"] = arch;
                    if (!cfg.fidelity.exact())
                        spec.knobs["fidelity"] = opt.fidelity;
                    if (cap)
                        spec.knobs["capacity_mb"] =
                            std::to_string(cap);
                    if (gw.isSpec) {
                        spec.mix = gw.composed.mix;
                        spec.cfg.obs.coreTenants =
                            gw.composed.coreTenants;
                    } else if (gw.known) {
                        spec.mix = rateMix(gw.profile, opt.cores);
                    } else {
                        spec.mix.name = gw.profile.name;
                        spec.label = gw.profile.name + "/" + policy;
                        const std::string name = gw.profile.name;
                        spec.custom = [name]() -> RunResult {
                            throw std::invalid_argument(
                                "unknown workload: " + name);
                        };
                    }
                    ExpandedJob job;
                    job.id = exp::jobId(spec);
                    job.group = exp::groupKey(spec);
                    job.spec = std::move(spec);
                    out.push_back(std::move(job));
                }
            }
        }
    }
    return out;
}

std::string
encodeGridOptions(const GridOptions &opt)
{
    json::JsonWriter w;
    w.beginObject();
    auto strings = [&w](const char *key,
                        const std::vector<std::string> &v) {
        w.key(key).beginArray();
        for (const auto &s : v)
            w.value(s);
        w.endArray();
    };
    strings("archs", opt.archs);
    strings("policies", opt.policies);
    strings("workloads", opt.workloads);
    w.key("capacities_mb").beginArray();
    for (std::uint64_t c : opt.capacitiesMb)
        w.value(c);
    w.endArray();
    w.key("cores").value(opt.cores);
    w.key("instr").value(opt.instr);
    w.key("seed").value(opt.seed);
    w.key("warmup").value(opt.warmup);
    w.key("remote").value(opt.remote);
    w.key("remote_scale").value(opt.remoteScale);
    w.key("remote_latency_ns").value(opt.remoteLatencyNs);
    w.key("remote_outstanding").value(opt.remoteOutstanding);
    w.key("fidelity").value(opt.fidelity);
    w.key("fidelity_detail").value(opt.fidelityDetail);
    w.key("fidelity_period").value(opt.fidelityPeriod);
    w.endObject();
    return w.str();
}

GridOptions
decodeGridOptions(const json::Value &v)
{
    GridOptions opt;
    auto strings = [&v](const char *key) {
        std::vector<std::string> out;
        for (const auto &e : v.at(key).arr)
            out.push_back(e.asString());
        return out;
    };
    opt.archs = strings("archs");
    opt.policies = strings("policies");
    opt.workloads = strings("workloads");
    opt.capacitiesMb.clear();
    for (const auto &e : v.at("capacities_mb").arr)
        opt.capacitiesMb.push_back(e.asU64());
    opt.cores = static_cast<std::uint32_t>(v.at("cores").asU64());
    opt.instr = v.at("instr").asU64();
    opt.seed = v.at("seed").asU64();
    opt.warmup = v.at("warmup").asU64();
    opt.remote = v.at("remote").asBool();
    opt.remoteScale = v.at("remote_scale").asDouble();
    opt.remoteLatencyNs = v.at("remote_latency_ns").asDouble();
    opt.remoteOutstanding = static_cast<std::uint32_t>(
        v.at("remote_outstanding").asU64());
    // Fidelity keys postdate dapsim.expq.v1 manifests; stores written
    // before them decode with the exact-mode defaults.
    if (const json::Value *f = v.find("fidelity"))
        opt.fidelity = f->asString();
    if (const json::Value *f = v.find("fidelity_detail"))
        opt.fidelityDetail = f->asU64();
    if (const json::Value *f = v.find("fidelity_period"))
        opt.fidelityPeriod = f->asU64();
    return opt;
}

} // namespace dapsim::expd
