/**
 * @file
 * The durable `dapsim.expq.v1` experiment store.
 *
 * On-disk layout under the store directory:
 *
 *   grid.jsonl              manifest: grid + job records, written once
 *                           atomically at submit time
 *   events/events-<w>.jsonl one append-only event ledger per writer
 *                           (worker id or control command)
 *   leases/job-<i>.lease    O_CREAT|O_EXCL claim for job i, JSON
 *                           {"pid","host"}, mtime = heartbeat
 *   ckpt/warmup-<hex>.ckpt  fleet-wide content-addressed warmup
 *                           checkpoints (exp::WarmupCache layout)
 *   stderr/job-<i>.txt      captured error text of failed jobs
 *
 * Correctness model: job execution is a pure function of the manifest
 * (see exp/job.hh), so the ledger only has to be *truthful*, never
 * *exclusive* — two workers racing the same job after a lease expiry
 * write identical result rows and merge dedups by index. Leases are an
 * efficiency mechanism; the CRC-sealed append-only ledgers are the
 * durability mechanism; atomic renames are the publication mechanism.
 *
 * Replay derives each job's state order-independently from record
 * counts: any `done` record wins; otherwise the job is failed when its
 * `failed` records outnumber its `retry` records; otherwise pending.
 */

#ifndef DAPSIM_EXPD_STORE_HH
#define DAPSIM_EXPD_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "expd/grid.hh"
#include "expd/ledger.hh"

namespace dapsim::expd
{

/** Replayed state of one job. */
struct JobState
{
    enum class State { Pending, Done, Failed };

    State state = State::Pending;
    std::string row;     ///< verbatim result row (done, or last failure)
    std::string error;   ///< last failure reason
    std::string worker;  ///< writer of the winning record
    std::uint64_t failures = 0;
    std::uint64_t retries = 0;
    bool started = false;
    double doneAt = 0.0; ///< timestamp of the winning done record
};

/** Full replay of a store's event ledgers. */
struct Replay
{
    std::vector<JobState> jobs;
    /** Warmup simulations actually executed, per group — the
     *  fleet-wide dedup invariant is every value == 1. */
    std::map<std::string, std::uint64_t> warmupsExecuted;
    /** Per-worker done counts (status display). */
    std::map<std::string, std::uint64_t> doneByWorker;
    double firstDoneAt = 0.0;
    double lastDoneAt = 0.0;
    bool droppedTornTail = false;

    std::size_t countState(JobState::State s) const;
};

/**
 * Handle to a store directory. create() expands the grid and persists
 * the manifest; open() reads it back, re-expands, and refuses to
 * proceed when any job id disagrees with the manifest (a different
 * build would silently redefine what each index means).
 */
class Store
{
  public:
    static Store create(const std::string &dir, const GridOptions &opt);
    static Store open(const std::string &dir);

    const std::string &dir() const { return dir_; }
    const GridOptions &options() const { return options_; }
    const std::vector<ExpandedJob> &jobs() const { return jobs_; }

    std::string eventsDir() const { return dir_ + "/events"; }
    std::string ckptDir() const { return dir_ + "/ckpt"; }
    std::string eventsPath(const std::string &writer) const;
    std::string leasePath(std::size_t index) const;
    std::string stderrPath(std::size_t index) const;

    /** Read every ledger under events/ and derive job states. */
    Replay replay() const;

    /**
     * Try to claim job @p index: reap the existing lease if stale
     * (same-host dead owner, or mtime older than @p ttl_sec), then
     * attempt the O_EXCL create. Returns true when this process now
     * holds the lease.
     */
    bool tryLease(std::size_t index, double ttl_sec) const;

    /** Refresh the lease mtime (call within the TTL while running). */
    void heartbeat(std::size_t index) const;

    /** Drop the lease after recording the job's outcome. */
    void releaseLease(std::size_t index) const;

    /** True when job @p index currently has a (any) lease file. */
    bool leased(std::size_t index) const;

    /**
     * Verbatim result rows in index order for a fully-resolved store
     * (every job done or failed-with-row); byte-identical to a serial
     * `dapsim_sweep --json` of the same grid. Throws StoreError when
     * any job is still unresolved.
     */
    std::vector<std::string> mergedRows(const Replay &replay) const;

    /**
     * Validate one replayed result row against the manifest: CRC was
     * already checked at the record layer; this checks the row itself
     * parses, carries the sweep schema id, and names the manifest's
     * job index and id. Throws StoreError on mismatch.
     */
    void verifyRow(std::size_t index, const std::string &row) const;

  private:
    Store() = default;

    std::string dir_;
    GridOptions options_;
    std::vector<ExpandedJob> jobs_;
};

} // namespace dapsim::expd

#endif // DAPSIM_EXPD_STORE_HH
