/**
 * @file
 * The expd worker runtime: lease jobs from a store, execute them, and
 * append durable result events.
 *
 * A worker walks its shard of the manifest (index % shardCount ==
 * shardIndex), claims each not-yet-done job with an O_EXCL lease,
 * executes it (sharing warm-up checkpoints through the fleet-wide
 * WarmupCache in <store>/ckpt), and appends a `done` or `failed`
 * event — embedding the verbatim result row — to its own event
 * ledger. A background thread refreshes the lease mtime so a healthy
 * worker's claim never expires; when a worker is SIGKILLed its lease
 * goes stale and any later worker reaps and re-runs the job. Because
 * jobs are pure functions of the manifest, a lease race at worst
 * duplicates work — never changes results.
 */

#ifndef DAPSIM_EXPD_WORKER_HH
#define DAPSIM_EXPD_WORKER_HH

#include <cstdint>
#include <string>

#include "expd/store.hh"

namespace dapsim::expd
{

/** Knobs of one worker invocation. */
struct WorkerOptions
{
    std::string storeDir;
    /** Ledger writer id; defaults to "w<pid>" (must be unique per
     *  live worker — two workers sharing an id would interleave
     *  appends into one ledger file). */
    std::string workerId;
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    /** Stop after this many executed jobs (0 = the whole shard) —
     *  test/ops hook for draining a store incrementally. */
    std::size_t maxJobs = 0;
    /** Lease heartbeat TTL. A worker silent for longer than this is
     *  presumed dead and its job returns to pending. */
    double leaseTtlSec = 60.0;
    bool progress = false;
};

/** What one runWorker() call did. */
struct WorkerStats
{
    std::uint64_t executed = 0; ///< jobs run to a done event
    std::uint64_t failed = 0;   ///< jobs run to a failed event
    std::uint64_t skipped = 0;  ///< already done or leased elsewhere
    std::uint64_t warmupsExecuted = 0;
    std::uint64_t warmupsReused = 0;
};

/**
 * Run one worker pass over the store. Throws StoreError (bad store)
 * or std::runtime_error (I/O) — individual job failures are recorded
 * as failed events, not thrown.
 */
WorkerStats runWorker(const WorkerOptions &opt);

} // namespace dapsim::expd

#endif // DAPSIM_EXPD_WORKER_HH
