/**
 * @file
 * Dirty-bit cache (DBC) for the Alloy cache (paper Section IV-B).
 *
 * The Alloy cache stores tag+data (TAD) together in DRAM, so knowing
 * whether a direct-mapped set holds a dirty line normally requires a TAD
 * fetch. The DBC is a small SRAM cache (paper: 32K entries, 4-way, one
 * borrowed L3 way, 5-cycle lookup) whose entries each hold the dirty
 * bits of a stretch of 64 consecutive Alloy sets, enabling IFRM without
 * touching the DRAM array.
 */

#ifndef DAPSIM_CACHE_DIRTY_BIT_CACHE_HH
#define DAPSIM_CACHE_DIRTY_BIT_CACHE_HH

#include <cstdint>

#include "cache/assoc_cache.hh"
#include "common/stats.hh"

namespace dapsim
{

struct DirtyBitCacheConfig
{
    std::uint64_t entries = 4096; ///< scaled from the paper's 32K
    std::uint32_t ways = 4;
    std::uint32_t setsPerEntry = 64;
    std::uint32_t lookupCycles = 5;
};

/** SRAM cache of per-Alloy-set dirty bits. */
class DirtyBitCache
{
  public:
    explicit DirtyBitCache(const DirtyBitCacheConfig &cfg);

    /** DBC probe outcome for one Alloy set. */
    struct Probe
    {
        bool hit = false;     ///< group resident in the DBC
        bool dirty = false;   ///< dirty bit of the probed set (if hit)
    };

    /** Probe the dirty bit of Alloy set @p alloy_set. Allocates on miss
     *  (with all bits conservatively dirty until updated). */
    Probe probe(std::uint64_t alloy_set);

    /** Record the known dirty state of @p alloy_set. */
    void update(std::uint64_t alloy_set, bool dirty);

    /** Checkpoint directory + statistics (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    const DirtyBitCacheConfig &config() const { return cfg_; }

    Counter hits;
    Counter misses;

  private:
    struct Entry
    {
        std::uint64_t dirtyBits = ~std::uint64_t(0);
        std::uint64_t knownBits = 0; ///< which bits have been observed
    };

    std::uint64_t groupOf(std::uint64_t alloy_set) const;
    std::uint64_t setIndex(std::uint64_t group) const;
    std::uint64_t tagOf(std::uint64_t group) const;

    DirtyBitCacheConfig cfg_;
    AssocCache<Entry> dir_;
};

} // namespace dapsim

#endif // DAPSIM_CACHE_DIRTY_BIT_CACHE_HH
