#include "cache/dirty_bit_cache.hh"

namespace dapsim
{

DirtyBitCache::DirtyBitCache(const DirtyBitCacheConfig &cfg)
    : cfg_(cfg),
      dir_(cfg.entries / cfg.ways ? cfg.entries / cfg.ways : 1, cfg.ways,
           ReplPolicy::LRU)
{
}

std::uint64_t
DirtyBitCache::groupOf(std::uint64_t alloy_set) const
{
    return alloy_set / cfg_.setsPerEntry;
}

std::uint64_t
DirtyBitCache::setIndex(std::uint64_t group) const
{
    return dir_.mapSet(group);
}

std::uint64_t
DirtyBitCache::tagOf(std::uint64_t group) const
{
    return group / dir_.numSets();
}

DirtyBitCache::Probe
DirtyBitCache::probe(std::uint64_t alloy_set)
{
    const std::uint64_t g = groupOf(alloy_set);
    const std::uint64_t bit =
        1ULL << (alloy_set % cfg_.setsPerEntry);
    Probe p;
    Entry *e = dir_.find(setIndex(g), tagOf(g));
    if (e != nullptr) {
        dir_.touch(setIndex(g), tagOf(g));
        hits.inc();
        // Unknown bits are conservatively dirty: IFRM must not bypass a
        // read hit to a line that could be dirty in the Alloy cache.
        p.hit = (e->knownBits & bit) != 0;
        p.dirty = (e->dirtyBits & bit) != 0;
        return p;
    }
    misses.inc();
    dir_.insert(setIndex(g), tagOf(g), Entry{});
    return p; // miss: caller must treat the set as possibly dirty
}

void
DirtyBitCache::update(std::uint64_t alloy_set, bool dirty)
{
    const std::uint64_t g = groupOf(alloy_set);
    const std::uint64_t bit =
        1ULL << (alloy_set % cfg_.setsPerEntry);
    Entry *e = dir_.find(setIndex(g), tagOf(g));
    if (e == nullptr)
        return;
    e->knownBits |= bit;
    if (dirty)
        e->dirtyBits |= bit;
    else
        e->dirtyBits &= ~bit;
}

void
DirtyBitCache::save(ckpt::Serializer &s) const
{
    dir_.save(s, [](ckpt::Serializer &out, const Entry &e) {
        out.u64(e.dirtyBits);
        out.u64(e.knownBits);
    });
    s.u64(hits.value());
    s.u64(misses.value());
}

void
DirtyBitCache::restore(ckpt::Deserializer &d)
{
    dir_.restore(d, [](ckpt::Deserializer &in, Entry &e) {
        e.dirtyBits = in.u64();
        e.knownBits = in.u64();
    });
    hits.set(d.u64());
    misses.set(d.u64());
}

} // namespace dapsim
