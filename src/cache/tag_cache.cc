#include "cache/tag_cache.hh"

namespace dapsim
{

TagCache::TagCache(const TagCacheConfig &cfg)
    : cfg_(cfg),
      dir_(cfg.entries / cfg.ways ? cfg.entries / cfg.ways : 1, cfg.ways,
           ReplPolicy::LRU)
{
}

std::uint64_t
TagCache::setIndex(std::uint64_t ms_set) const
{
    return dir_.mapSet(ms_set);
}

std::uint64_t
TagCache::tagOf(std::uint64_t ms_set) const
{
    return ms_set / dir_.numSets();
}

TagCache::LookupResult
TagCache::access(std::uint64_t ms_set)
{
    LookupResult res;
    if (!cfg_.enabled) {
        res.hit = false;
        misses.inc();
        return res;
    }
    const std::uint64_t s = setIndex(ms_set);
    const std::uint64_t t = tagOf(ms_set);
    if (dir_.find(s, t) != nullptr) {
        dir_.touch(s, t);
        hits.inc();
        res.hit = true;
        return res;
    }
    misses.inc();
    auto victim = dir_.insert(s, t, Entry{});
    if (victim.valid && victim.value.dirty) {
        res.writebackNeeded = true;
        writebacks.inc();
    }
    return res;
}

void
TagCache::markDirty(std::uint64_t ms_set)
{
    if (!cfg_.enabled)
        return;
    Entry *e = dir_.find(setIndex(ms_set), tagOf(ms_set));
    if (e != nullptr)
        e->dirty = true;
}

bool
TagCache::contains(std::uint64_t ms_set) const
{
    if (!cfg_.enabled)
        return false;
    return dir_.find(setIndex(ms_set), tagOf(ms_set)) != nullptr;
}

void
TagCache::save(ckpt::Serializer &s) const
{
    dir_.save(s, [](ckpt::Serializer &out, const Entry &e) {
        out.boolean(e.dirty);
    });
    s.u64(hits.value());
    s.u64(misses.value());
    s.u64(writebacks.value());
}

void
TagCache::restore(ckpt::Deserializer &d)
{
    dir_.restore(d, [](ckpt::Deserializer &in, Entry &e) {
        e.dirty = in.boolean();
    });
    hits.set(d.u64());
    misses.set(d.u64());
    writebacks.set(d.u64());
}

} // namespace dapsim
