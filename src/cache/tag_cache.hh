/**
 * @file
 * SRAM tag cache for DRAM-resident memory-side cache metadata.
 *
 * The sectored DRAM cache keeps sector metadata in the DRAM array; a
 * small set-associative SRAM tag cache (paper Section VI-A.1, 32K
 * entries, 4-way, one borrowed L3 way, 5-cycle lookup) filters the
 * metadata read/update CAS traffic. An entry caches the metadata of one
 * DRAM-cache *set* (all ways' tags), so a hit answers hit/miss/way/state
 * queries without touching DRAM.
 */

#ifndef DAPSIM_CACHE_TAG_CACHE_HH
#define DAPSIM_CACHE_TAG_CACHE_HH

#include <cstdint>

#include "cache/assoc_cache.hh"
#include "common/stats.hh"

namespace dapsim
{

/** Tag-cache configuration. */
struct TagCacheConfig
{
    std::uint64_t entries = 4096; ///< scaled from the paper's 32K
    std::uint32_t ways = 4;
    std::uint32_t lookupCycles = 5; ///< CPU cycles beyond L3 lookup
    bool enabled = true;
};

/**
 * Tracks which MS$ sets' metadata is cached on die.
 *
 * The payload is a dirty flag: metadata mutated while cached must be
 * written back to the DRAM array when the entry is evicted.
 */
class TagCache
{
  public:
    explicit TagCache(const TagCacheConfig &cfg);

    /** Result of a lookup for MS$ set @p msSet. */
    struct LookupResult
    {
        bool hit = false;
        /** An eviction of dirty cached metadata requires a DRAM write. */
        bool writebackNeeded = false;
    };

    /**
     * Look up metadata for an MS$ set; on miss the entry is allocated
     * (the caller is responsible for charging the metadata-fetch CAS).
     */
    LookupResult access(std::uint64_t ms_set);

    /** Record that cached metadata for @p ms_set was mutated. */
    void markDirty(std::uint64_t ms_set);

    /** Probe without allocating or touching recency. */
    bool contains(std::uint64_t ms_set) const;

    /** Checkpoint directory + statistics (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    const TagCacheConfig &config() const { return cfg_; }

    double
    missRatio() const
    {
        const auto total = hits.value() + misses.value();
        return total ? static_cast<double>(misses.value()) / total : 0.0;
    }

    Counter hits;
    Counter misses;
    Counter writebacks;

  private:
    struct Entry
    {
        bool dirty = false;
    };

    std::uint64_t setIndex(std::uint64_t ms_set) const;
    std::uint64_t tagOf(std::uint64_t ms_set) const;

    TagCacheConfig cfg_;
    AssocCache<Entry> dir_;
};

} // namespace dapsim

#endif // DAPSIM_CACHE_TAG_CACHE_HH
