/**
 * @file
 * Counting Bloom filter, used by SBD's Dirty List (Sim et al., and the
 * paper's Section VI-A.4 description) to identify highly-written pages.
 */

#ifndef DAPSIM_CACHE_BLOOM_HH
#define DAPSIM_CACHE_BLOOM_HH

#include <cstdint>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace dapsim
{

/** Counting Bloom filter with k independent hash functions. */
class CountingBloom
{
  public:
    CountingBloom(std::size_t buckets = 4096, unsigned hashes = 3,
                  std::uint8_t max_count = 15)
        : counts_(buckets, 0), hashes_(hashes), max_(max_count)
    {
        if (!isPowerOfTwo(buckets))
            fatal("CountingBloom: buckets must be a power of two");
    }

    /** Increment all hash positions (saturating). */
    void
    insert(std::uint64_t key)
    {
        forEachBucket(key, [this](std::size_t i) {
            if (counts_[i] < max_)
                ++counts_[i];
        });
    }

    /** Decrement all hash positions (floored at zero). */
    void
    remove(std::uint64_t key)
    {
        forEachBucket(key, [this](std::size_t i) {
            if (counts_[i] > 0)
                --counts_[i];
        });
    }

    /** Possibly-present test (no false negatives under correct use). */
    bool
    mayContain(std::uint64_t key) const
    {
        bool all = true;
        forEachBucket(key, [this, &all](std::size_t i) {
            if (counts_[i] == 0)
                all = false;
        });
        return all;
    }

    /** Minimum counter over the key's buckets (frequency estimate). */
    std::uint8_t
    estimate(std::uint64_t key) const
    {
        std::uint8_t m = max_;
        forEachBucket(key, [this, &m](std::size_t i) {
            if (counts_[i] < m)
                m = counts_[i];
        });
        return m;
    }

    void
    clear()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    /** Checkpoint the counter array (see src/ckpt/). */
    void
    save(ckpt::Serializer &s) const
    {
        s.u32(hashes_);
        s.u8(max_);
        s.bytes(counts_.data(), counts_.size());
    }

    void
    restore(ckpt::Deserializer &d)
    {
        if (d.u32() != hashes_ || d.u8() != max_)
            throw ckpt::CkptError("ckpt: Bloom filter shape mismatch");
        const auto counts = d.bytes();
        if (counts.size() != counts_.size())
            throw ckpt::CkptError("ckpt: Bloom filter size mismatch");
        counts_ = counts;
    }

  private:
    template <typename Fn>
    void
    forEachBucket(std::uint64_t key, Fn fn) const
    {
        std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
        for (unsigned i = 0; i < hashes_; ++i) {
            fn(static_cast<std::size_t>(h & (counts_.size() - 1)));
            h ^= h >> 29;
            h *= 0xbf58476d1ce4e5b9ULL;
        }
    }

    std::vector<std::uint8_t> counts_;
    unsigned hashes_;
    std::uint8_t max_;
};

} // namespace dapsim

#endif // DAPSIM_CACHE_BLOOM_HH
