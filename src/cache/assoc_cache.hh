/**
 * @file
 * Generic set-associative cache directory with LRU or NRU replacement.
 *
 * This is the structural substrate shared by the shared L3, the MS$
 * sector directories, the SRAM tag cache, the dirty-bit cache and the
 * predictor tables. It tracks tags and a caller-supplied metadata value
 * per line; data contents are never simulated (timing-only simulator).
 *
 * Data layout (structure-of-arrays, see DESIGN.md §14): the per-way
 * tags of a set are packed contiguously and scanned linearly, so a
 * lookup touches one cache line of tags instead of striding through
 * array-of-structures Line records. Valid and NRU-reference state live
 * in one 64-bit mask per set (hence the <= 64 ways limit), which turns
 * victim selection into bit-scan/popcount operations; the LRU
 * `lastUse` clocks and the Value payload are cold side-arrays touched
 * only on the paths that need them.
 *
 * Replacement contract (pinned; the differential fuzz suite in
 * tests/test_assoc_cache_diff.cc enforces it against the frozen AoS
 * reference in tests/reference_assoc_cache.hh):
 *  - insert() fills the lowest-numbered invalid way first;
 *  - NRU: the victim is the lowest-numbered way with a clear reference
 *    bit; when every way is referenced, all reference bits are cleared
 *    and way 0 is taken;
 *  - LRU: the victim is the way with the smallest lastUse, and ties
 *    are broken lowest-way-wins (explicitly: the scan keeps the first
 *    minimum it sees in ascending way order).
 *
 * Invalidated ways keep their stale tag, lastUse and value bytes until
 * overwritten; v1 checkpoints serialize them, so both layouts produce
 * byte-identical snapshots.
 */

#ifndef DAPSIM_CACHE_ASSOC_CACHE_HH
#define DAPSIM_CACHE_ASSOC_CACHE_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace dapsim
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    LRU,
    NRU, ///< single not-recently-used bit, as in the paper's DRAM cache
};

/**
 * Set-associative tag directory.
 *
 * @tparam Value per-line metadata (dirty bits, sector bitmaps, ...).
 */
template <typename Value>
class AssocCache
{
  public:
    AssocCache(std::uint64_t sets, std::uint32_t ways,
               ReplPolicy policy = ReplPolicy::LRU)
        : sets_(sets), ways_(ways), policy_(policy)
    {
        if (sets == 0 || ways == 0)
            fatal("AssocCache: zero geometry");
        if (ways > 64)
            fatal("AssocCache: more than 64 ways unsupported");
        wayMask_ = ways == 64 ? ~std::uint64_t(0)
                              : (std::uint64_t(1) << ways) - 1;
        setMask_ = (sets & (sets - 1)) == 0 ? sets - 1 : 0;
        tags_.assign(sets * ways, 0);
        lastUse_.assign(sets * ways, 0);
        values_.resize(sets * ways);
        valid_.assign(sets, 0);
        nru_.assign(sets, 0);
    }

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** @p x reduced modulo the set count — a mask for the (universal
     *  in practice) power-of-two geometries, a divide otherwise. */
    std::uint64_t
    mapSet(std::uint64_t x) const
    {
        return setMask_ != 0 ? (x & setMask_) : (x % sets_);
    }

    /** Find a line; returns nullptr on miss. Does not update recency. */
    Value *
    find(std::uint64_t set, std::uint64_t tag)
    {
        const std::uint32_t w = findWay(set, tag);
        return w == kNoWay ? nullptr : &values_[set * ways_ + w];
    }

    const Value *
    find(std::uint64_t set, std::uint64_t tag) const
    {
        auto *self = const_cast<AssocCache *>(this);
        return self->find(set, tag);
    }

    /** Mark a resident line as recently used. */
    void
    touch(std::uint64_t set, std::uint64_t tag)
    {
        const std::uint32_t w = findWay(set, tag);
        if (w == kNoWay)
            return;
        const std::uint64_t bit = std::uint64_t(1) << w;
        nru_[set] |= bit;
        lastUse_[set * ways_ + w] = ++useClock_;
        // NRU: when every valid line in the set is referenced, clear
        // the others so a victim always exists.
        if (policy_ == ReplPolicy::NRU &&
            (valid_[set] & ~nru_[set]) == 0)
            nru_[set] = bit;
    }

    /** Evicted-line report from insert(). */
    struct Victim
    {
        bool valid = false;
        std::uint64_t tag = 0;
        Value value{};
    };

    /**
     * Insert a line (must not already be resident); returns the victim.
     * The new line is marked most-recently-used.
     */
    Victim
    insert(std::uint64_t set, std::uint64_t tag, Value v)
    {
        if (findWay(set, tag) != kNoWay)
            panic("AssocCache: duplicate insert");
        const std::uint32_t w = victimWay(set);
        const std::size_t idx = set * ways_ + w;
        const std::uint64_t bit = std::uint64_t(1) << w;
        Victim out;
        if (valid_[set] & bit) {
            out.valid = true;
            out.tag = tags_[idx];
            out.value = std::move(values_[idx]);
        }
        tags_[idx] = tag;
        valid_[set] |= bit;
        values_[idx] = std::move(v);
        // Inserted lines start not-recently-used under NRU; LRU keeps
        // the reference bit set (it only matters for serialized state).
        if (policy_ == ReplPolicy::LRU)
            nru_[set] |= bit;
        else
            nru_[set] &= ~bit;
        lastUse_[idx] = ++useClock_;
        return out;
    }

    /** Remove a line if present. @return true if it was resident. */
    bool
    erase(std::uint64_t set, std::uint64_t tag)
    {
        const std::uint32_t w = findWay(set, tag);
        if (w == kNoWay)
            return false;
        const std::uint64_t bit = std::uint64_t(1) << w;
        valid_[set] &= ~bit;
        nru_[set] &= ~bit;
        // The dead way's tag/lastUse/value persist until overwritten.
        return true;
    }

    /** Invalidate an entire set, invoking @p fn on each valid line. */
    void
    flushSet(std::uint64_t set,
             const std::function<void(std::uint64_t, Value &)> &fn)
    {
        const std::size_t base = set * ways_;
        for (std::uint64_t m = valid_[set]; m != 0; m &= m - 1) {
            const std::uint32_t w =
                static_cast<std::uint32_t>(std::countr_zero(m));
            fn(tags_[base + w], values_[base + w]);
            const std::uint64_t bit = std::uint64_t(1) << w;
            valid_[set] &= ~bit;
            nru_[set] &= ~bit;
        }
    }

    /** Visit every valid line (tests, flushes). */
    void
    forEach(const std::function<void(std::uint64_t, std::uint64_t,
                                     Value &)> &fn)
    {
        for (std::uint64_t s = 0; s < sets_; ++s) {
            const std::size_t base = s * ways_;
            for (std::uint64_t m = valid_[s]; m != 0; m &= m - 1) {
                const std::uint32_t w =
                    static_cast<std::uint32_t>(std::countr_zero(m));
                fn(s, tags_[base + w], values_[base + w]);
            }
        }
    }

    /** Number of valid lines in a set. */
    std::uint32_t
    occupancy(std::uint64_t set) const
    {
        return static_cast<std::uint32_t>(std::popcount(valid_[set]));
    }

    /**
     * Checkpoint the directory. @p save_value serializes one Value
     * (`void(ckpt::Serializer&, const Value&)`); restore() reads the
     * state back into an identically shaped cache via @p restore_value
     * (`void(ckpt::Deserializer&, Value&)`) and throws CkptError on a
     * geometry mismatch.
     *
     * Format 1 emits the per-line byte stream of dapsim.ckpt.v1
     * (byte-identical to the historical AoS implementation, stale
     * bytes of invalid ways included). Format 2 emits the bulk-span
     * layout: the SoA arrays are written whole, and — when Value has
     * unique object representations on a little-endian host — the
     * value array as raw bytes, so restore is a handful of memcpys.
     */
    template <typename SaveValue>
    void
    save(ckpt::Serializer &s, SaveValue &&save_value) const
    {
        s.u64(sets_);
        s.u32(ways_);
        s.u32(static_cast<std::uint32_t>(policy_));
        s.u64(useClock_);
        if (s.format() >= 2) {
            s.u64Span(tags_.data(), tags_.size());
            s.u64Span(valid_.data(), valid_.size());
            s.u64Span(nru_.data(), nru_.size());
            s.u64Span(lastUse_.data(), lastUse_.size());
            s.u8(kRawValues ? 1 : 0);
            if constexpr (kRawValues) {
                s.raw(values_.data(), values_.size() * sizeof(Value));
            } else {
                for (const Value &v : values_)
                    save_value(s, v);
            }
            return;
        }
        for (std::uint64_t set = 0; set < sets_; ++set)
            for (std::uint32_t w = 0; w < ways_; ++w) {
                const std::size_t idx = set * ways_ + w;
                s.u64(tags_[idx]);
                s.boolean((valid_[set] >> w) & 1);
                s.boolean((nru_[set] >> w) & 1);
                s.u64(lastUse_[idx]);
                save_value(s, values_[idx]);
            }
    }

    template <typename RestoreValue>
    void
    restore(ckpt::Deserializer &d, RestoreValue &&restore_value)
    {
        if (d.u64() != sets_ || d.u32() != ways_ ||
            d.u32() != static_cast<std::uint32_t>(policy_))
            throw ckpt::CkptError(
                "ckpt: cache directory geometry mismatch");
        useClock_ = d.u64();
        if (d.format() >= 2) {
            d.u64Span(tags_.data(), tags_.size());
            d.u64Span(valid_.data(), valid_.size());
            d.u64Span(nru_.data(), nru_.size());
            d.u64Span(lastUse_.data(), lastUse_.size());
            const bool raw = d.u8() != 0;
            if (raw) {
                if constexpr (kRawValues)
                    d.raw(values_.data(),
                          values_.size() * sizeof(Value));
                else
                    throw ckpt::CkptError(
                        "ckpt: v2 raw value encoding not restorable "
                        "on this host/value type");
            } else {
                for (Value &v : values_)
                    restore_value(d, v);
            }
            return;
        }
        for (std::uint64_t set = 0; set < sets_; ++set)
            for (std::uint32_t w = 0; w < ways_; ++w) {
                const std::size_t idx = set * ways_ + w;
                const std::uint64_t bit = std::uint64_t(1) << w;
                tags_[idx] = d.u64();
                if (d.boolean())
                    valid_[set] |= bit;
                else
                    valid_[set] &= ~bit;
                if (d.boolean())
                    nru_[set] |= bit;
                else
                    nru_[set] &= ~bit;
                lastUse_[idx] = d.u64();
                restore_value(d, values_[idx]);
            }
    }

  private:
    static constexpr std::uint32_t kNoWay = ~std::uint32_t(0);

    /** Whole-array raw value copies are legal only when every byte of
     *  Value is deterministic (no padding) and the host already uses
     *  the on-disk little-endian layout. */
    static constexpr bool kRawValues =
        std::has_unique_object_representations_v<Value> &&
        std::is_trivially_copyable_v<Value> &&
        ckpt::kHostIsLittleEndian;

    /** Way of the resident line with @p tag, or kNoWay. Scans only the
     *  valid ways, lowest way first (matches the AoS scan order). */
    std::uint32_t
    findWay(std::uint64_t set, std::uint64_t tag) const
    {
        if (set >= sets_)
            panic("AssocCache: set out of range");
        const std::uint64_t *tags = tags_.data() + set * ways_;
        for (std::uint64_t m = valid_[set]; m != 0; m &= m - 1) {
            const std::uint32_t w =
                static_cast<std::uint32_t>(std::countr_zero(m));
            if (tags[w] == tag)
                return w;
        }
        return kNoWay;
    }

    std::uint32_t
    victimWay(std::uint64_t set)
    {
        // Lowest-numbered invalid way first.
        const std::uint64_t invalid = ~valid_[set] & wayMask_;
        if (invalid != 0)
            return static_cast<std::uint32_t>(
                std::countr_zero(invalid));
        if (policy_ == ReplPolicy::NRU) {
            const std::uint64_t unref = ~nru_[set] & wayMask_;
            if (unref != 0)
                return static_cast<std::uint32_t>(
                    std::countr_zero(unref));
            // All referenced: clear and take way 0.
            nru_[set] = 0;
            return 0;
        }
        // LRU: strict < keeps the first minimum in ascending way
        // order, i.e. lowest-way-wins on lastUse ties (pinned
        // contract, see the class comment).
        const std::uint64_t *lu = lastUse_.data() + set * ways_;
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (lu[w] < oldest) {
                oldest = lu[w];
                victim = w;
            }
        }
        return victim;
    }

    std::uint64_t sets_;
    std::uint32_t ways_;
    ReplPolicy policy_;
    std::uint64_t wayMask_;
    /** sets_ - 1 when sets_ is a power of two, else 0 (see mapSet). */
    std::uint64_t setMask_;
    /** Hot: packed per-set tags, one contiguous run per set. */
    std::vector<std::uint64_t> tags_;
    /** Hot: one valid/NRU-reference bit per way, one word per set. */
    std::vector<std::uint64_t> valid_;
    std::vector<std::uint64_t> nru_;
    /** Cold: LRU clocks and payload, touched off the lookup path. */
    std::vector<std::uint64_t> lastUse_;
    std::vector<Value> values_;
    std::uint64_t useClock_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_CACHE_ASSOC_CACHE_HH
