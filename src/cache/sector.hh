/**
 * @file
 * Per-sector metadata for sectored (sub-blocked) memory-side caches.
 *
 * A sector is an allocation unit of up to 64 contiguous 64B blocks
 * (paper: 4 KB for the DRAM cache, 1 KB for eDRAM); valid and dirty
 * state is kept per block in bitmaps.
 */

#ifndef DAPSIM_CACHE_SECTOR_HH
#define DAPSIM_CACHE_SECTOR_HH

#include <bit>
#include <cstdint>

namespace dapsim
{

/** Valid/dirty block bitmaps of one resident sector. */
struct SectorMeta
{
    std::uint64_t validMask = 0;
    std::uint64_t dirtyMask = 0;
    /** Blocks actually referenced by demand accesses this residency
     *  (what the footprint predictor must learn — valid bits include
     *  prefetched-but-unused blocks and would self-reinforce). */
    std::uint64_t touchedMask = 0;

    static std::uint64_t bit(std::uint32_t blk) { return 1ULL << blk; }

    bool isValid(std::uint32_t blk) const { return validMask & bit(blk); }
    bool isDirty(std::uint32_t blk) const { return dirtyMask & bit(blk); }

    void
    setValid(std::uint32_t blk)
    {
        validMask |= bit(blk);
    }

    void
    setDirty(std::uint32_t blk)
    {
        validMask |= bit(blk);
        dirtyMask |= bit(blk);
    }

    void
    clearBlock(std::uint32_t blk)
    {
        validMask &= ~bit(blk);
        dirtyMask &= ~bit(blk);
    }

    void
    touch(std::uint32_t blk)
    {
        touchedMask |= bit(blk);
    }

    std::uint32_t validCount() const { return std::popcount(validMask); }
    std::uint32_t dirtyCount() const { return std::popcount(dirtyMask); }
    bool anyDirty() const { return dirtyMask != 0; }
};

} // namespace dapsim

#endif // DAPSIM_CACHE_SECTOR_HH
