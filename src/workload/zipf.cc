#include "workload/zipf.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dapsim::workload
{

ZipfSampler::ZipfSampler(std::uint64_t n, double skew)
{
    if (n == 0)
        fatal("ZipfSampler: need at least one key");
    if (!(skew > 0.0))
        fatal("ZipfSampler: skew must be > 0, got " +
              std::to_string(skew));
    const std::uint64_t ranks = std::min(n, kMaxRanks);
    cdf_.resize(ranks);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < ranks; ++i) {
        acc += std::pow(static_cast<double>(i + 1), -skew);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0; // guard against rounding at the tail
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.real();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::uint64_t>(it - cdf_.begin());
    return idx < cdf_.size() ? idx : cdf_.size() - 1;
}

double
ZipfSampler::probability(std::uint64_t rank) const
{
    return cdf_[rank] - (rank ? cdf_[rank - 1] : 0.0);
}

BlockPermutation::BlockPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n)
{
    if (n_ == 0)
        fatal("BlockPermutation: empty domain");
    // Smallest balanced Feistel domain 2^(2*halfBits) covering n.
    std::uint32_t bits = 1;
    while (bits < 63 && (1ULL << bits) < n_)
        ++bits;
    halfBits_ = (bits + 1) / 2;
    halfMask_ = (1ULL << halfBits_) - 1;
    std::uint64_t z = seed;
    for (auto &k : keys_)
        k = mix64(z += 0x9e3779b97f4a7c15ULL);
}

std::uint64_t
BlockPermutation::apply(std::uint64_t x) const
{
    // Cycle-walk: the Feistel net permutes [0, 2^(2*halfBits)); values
    // landing outside [0, n) are re-encrypted until they fall inside.
    // Expected < 4 rounds of walking since the domain is < 4x n.
    do {
        std::uint64_t l = x >> halfBits_;
        std::uint64_t r = x & halfMask_;
        for (const std::uint64_t key : keys_) {
            const std::uint64_t t = r;
            r = l ^ (mix64(r ^ key) & halfMask_);
            l = t;
        }
        x = (l << halfBits_) | r;
    } while (x >= n_);
    return x;
}

} // namespace dapsim::workload
