/**
 * @file
 * Key-distribution sampling utilities for the workload engine.
 *
 * ZipfSampler draws ranks from a Zipf(s) popularity law using a
 * precomputed CDF and binary search — the compact table idiom used by
 * key-value store simulators. The table is capped at 2^20 ranks; a
 * footprint with more blocks than that maps each rank onto a
 * contiguous span of blocks (see ZipfGenerator).
 *
 * BlockPermutation is a seed-deterministic bijection on [0, n) built
 * from a four-round Feistel network with cycle-walking. The engine
 * uses it to scramble popularity ranks across the address space (so
 * the hot keys are not the low addresses) and to drive the
 * pointer-chase kernel through a full-cycle pseudorandom tour.
 */

#ifndef DAPSIM_WORKLOAD_ZIPF_HH
#define DAPSIM_WORKLOAD_ZIPF_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace dapsim::workload
{

/** SplitMix64 finalizer; the engine's stateless hash primitive. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Zipf(s) rank sampler over min(n, 2^20) ranks, precomputed CDF. */
class ZipfSampler
{
  public:
    /** Table size cap; beyond this, ranks fan out over block spans. */
    static constexpr std::uint64_t kMaxRanks = 1ULL << 20;

    /**
     * @param n number of keys (ranks clamp to min(n, kMaxRanks))
     * @param skew Zipf exponent s > 0 (0.99 ~ YCSB, higher = hotter)
     */
    ZipfSampler(std::uint64_t n, double skew);

    std::uint64_t ranks() const { return cdf_.size(); }

    /** Draw a rank in [0, ranks()); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    /** Analytic probability mass of @p rank (for tests). */
    double probability(std::uint64_t rank) const;

  private:
    std::vector<double> cdf_;
};

/** Seed-deterministic bijection on [0, n); stateless after build. */
class BlockPermutation
{
  public:
    BlockPermutation(std::uint64_t n, std::uint64_t seed);

    std::uint64_t n() const { return n_; }

    /** Map @p x in [0, n) to its permuted image in [0, n). */
    std::uint64_t apply(std::uint64_t x) const;

  private:
    std::uint64_t n_;
    std::uint32_t halfBits_;
    std::uint64_t halfMask_;
    std::uint64_t keys_[4];
};

} // namespace dapsim::workload

#endif // DAPSIM_WORKLOAD_ZIPF_HH
