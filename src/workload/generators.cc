#include "workload/generators.hh"

#include <algorithm>

#include "common/log.hh"

namespace dapsim::workload
{

namespace
{

std::uint64_t
footprintBlocks(const KernelParams &p, const char *kind)
{
    if (p.footprintBytes < kBlockBytes)
        fatal(std::string(kind) + ": footprint smaller than one block");
    return p.footprintBytes / kBlockBytes;
}

std::uint64_t
instrGap(Rng &rng, double mpki)
{
    const double mean = std::max(1.0, 1000.0 / mpki);
    return rng.gap(mean, 1'000'000);
}

} // namespace

std::uint64_t
driftOffset(const DriftConfig &d, std::uint64_t blocks,
            std::uint64_t seed, std::uint64_t n, Rng &rng)
{
    switch (d.mode) {
    case DriftConfig::Mode::None:
        return 0;
    case DriftConfig::Mode::Rotate:
        // One full revolution over the footprint per period.
        return static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(n % d.period) * blocks /
            d.period);
    case DriftConfig::Mode::Jump:
        // Each phase hops to an unrelated pseudorandom placement.
        return mix64(seed ^ (n / d.period) * 0x9e3779b97f4a7c15ULL) %
               blocks;
    case DriftConfig::Mode::Migrate: {
        // Within a phase, accesses migrate probabilistically from the
        // current placement to the next: at fraction f through the
        // phase, a share f of the traffic has already moved.
        const std::uint64_t k = n / d.period;
        const double frac =
            static_cast<double>(n % d.period) / static_cast<double>(d.period);
        const std::uint64_t from =
            mix64(seed ^ k * 0x9e3779b97f4a7c15ULL) % blocks;
        const std::uint64_t to =
            mix64(seed ^ (k + 1) * 0x9e3779b97f4a7c15ULL) % blocks;
        return rng.chance(frac) ? to : from;
    }
    }
    return 0;
}

// ---- ZipfGenerator -------------------------------------------------

ZipfGenerator::ZipfGenerator(const Params &p)
    : p_(p), blocks_(footprintBlocks(p, "zipf")),
      zipf_(blocks_, p.skew),
      perm_(zipf_.ranks(), mix64(p.seed ^ 0x5851f42d4c957f2dULL)),
      rng_(p.seed)
{
    span_ = blocks_ / zipf_.ranks();
    rem_ = blocks_ % zipf_.ranks();
}

std::uint64_t
ZipfGenerator::pickBlock()
{
    // Rank -> permuted slot -> contiguous block span. When the CDF
    // table covers every block (the common case) each slot is exactly
    // one block; larger footprints give each rank a small span with a
    // uniform pick inside it.
    const std::uint64_t slot = perm_.apply(zipf_.sample(rng_));
    const std::uint64_t start = slot * span_ + std::min(slot, rem_);
    const std::uint64_t size = span_ + (slot < rem_ ? 1 : 0);
    return start + (size > 1 ? rng_.below(size) : 0);
}

bool
ZipfGenerator::next(TraceRequest &out)
{
    if (runLeft_ == 0) {
        const std::uint64_t off =
            driftOffset(p_.drift, blocks_, p_.seed, accesses_, rng_);
        runPtr_ = (pickBlock() + off) % blocks_;
        const double mean = std::max(1.0, p_.runLength);
        runLeft_ = static_cast<std::uint32_t>(rng_.gap(mean, 64));
    }
    const std::uint64_t block = runPtr_;
    runPtr_ = (runPtr_ + 1) % blocks_;
    --runLeft_;
    ++accesses_;

    out.addr = p_.base + block * kBlockBytes;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
ZipfGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(accesses_);
    s.u64(runPtr_);
    s.u32(runLeft_);
}

void
ZipfGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    accesses_ = d.u64();
    runPtr_ = d.u64();
    runLeft_ = d.u32();
}

// ---- HotspotGenerator ----------------------------------------------

HotspotGenerator::HotspotGenerator(const Params &p)
    : p_(p), blocks_(footprintBlocks(p, "hotspot")), rng_(p.seed)
{
    hotBlocks_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(blocks_) * p_.hotFraction));
}

bool
HotspotGenerator::next(TraceRequest &out)
{
    if (runLeft_ == 0) {
        // Hot region is [off, off + hotBlocks) — drift moves it.
        const std::uint64_t off =
            driftOffset(p_.drift, blocks_, p_.seed, accesses_, rng_);
        const std::uint64_t pick = rng_.chance(p_.hotProbability)
                                       ? rng_.below(hotBlocks_)
                                       : rng_.below(blocks_);
        runPtr_ = (pick + off) % blocks_;
        const double mean = std::max(1.0, p_.runLength);
        runLeft_ = static_cast<std::uint32_t>(rng_.gap(mean, 64));
    }
    const std::uint64_t block = runPtr_;
    runPtr_ = (runPtr_ + 1) % blocks_;
    --runLeft_;
    ++accesses_;

    out.addr = p_.base + block * kBlockBytes;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
HotspotGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(accesses_);
    s.u64(runPtr_);
    s.u32(runLeft_);
}

void
HotspotGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    accesses_ = d.u64();
    runPtr_ = d.u64();
    runLeft_ = d.u32();
}

// ---- FloodGenerator ------------------------------------------------

FloodGenerator::FloodGenerator(const KernelParams &p)
    : p_(p), blocks_(footprintBlocks(p, "flood")), rng_(p.seed)
{
}

bool
FloodGenerator::next(TraceRequest &out)
{
    out.addr = p_.base + ptr_ * kBlockBytes;
    ptr_ = (ptr_ + 1) % blocks_;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
FloodGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(ptr_);
}

void
FloodGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    ptr_ = d.u64();
}

// ---- ChaseGenerator ------------------------------------------------

ChaseGenerator::ChaseGenerator(const KernelParams &p)
    : p_(p), blocks_(footprintBlocks(p, "chase")),
      perm_(blocks_, mix64(p.seed ^ 0x2545f4914f6cdd1dULL)), rng_(p.seed)
{
}

bool
ChaseGenerator::next(TraceRequest &out)
{
    // Full-cycle tour: the counter walks [0, blocks) in order and the
    // permutation scatters it, so every block is visited exactly once
    // per lap with no stride a prefetcher can latch onto.
    out.addr = p_.base + perm_.apply(counter_ % blocks_) * kBlockBytes;
    ++counter_;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
ChaseGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(counter_);
}

void
ChaseGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    counter_ = d.u64();
}

// ---- WriteBurstGenerator -------------------------------------------

WriteBurstGenerator::WriteBurstGenerator(const Params &p)
    : p_(p), blocks_(footprintBlocks(p, "wburst")), rng_(p.seed)
{
    // Reads per cycle chosen so the long-run write share equals duty.
    const double reads =
        static_cast<double>(p_.burst) * (1.0 - p_.duty) / p_.duty;
    cycleLen_ = p_.burst + static_cast<std::uint64_t>(reads + 0.5);
}

bool
WriteBurstGenerator::next(TraceRequest &out)
{
    if (pos_ < p_.burst) {
        // Burst phase: sequential dirty writebacks.
        out.addr = p_.base + writePtr_ * kBlockBytes;
        writePtr_ = (writePtr_ + 1) % blocks_;
        out.isWrite = true;
    } else {
        // Read phase: uniform random reads over the footprint.
        out.addr = p_.base + rng_.below(blocks_) * kBlockBytes;
        out.isWrite = false;
    }
    pos_ = (pos_ + 1) % cycleLen_;
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
WriteBurstGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(pos_);
    s.u64(writePtr_);
}

void
WriteBurstGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    pos_ = d.u64();
    writePtr_ = d.u64();
}

// ---- SparseStrideGenerator -----------------------------------------

SparseStrideGenerator::SparseStrideGenerator(const Params &p)
    : p_(p), blocks_(footprintBlocks(p, "sparse")), rng_(p.seed)
{
}

bool
SparseStrideGenerator::next(TraceRequest &out)
{
    out.addr = p_.base + ptr_ * kBlockBytes;
    ptr_ = (ptr_ + p_.strideBlocks) % blocks_;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = instrGap(rng_, p_.mpki);
    return true;
}

void
SparseStrideGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(ptr_);
}

void
SparseStrideGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    ptr_ = d.u64();
}

} // namespace dapsim::workload
