/**
 * @file
 * MixComposer — turn a workload spec (or classic profile name) into a
 * runnable multi-programmed Mix.
 *
 * This is the top half of the workload engine: it knows about the
 * classic profile roster (trace/workloads.hh) so `mix:` tenants can
 * name either an engine kind ("zipf") or a profile ("mcf"), and it is
 * therefore built into the trace library rather than the lower
 * dapsim_workload library (see src/CMakeLists.txt).
 *
 * A composed Mix keeps the one-generator-per-core architecture: each
 * core's WorkloadProfile carries either a classic parameter block or a
 * per-tenant spec string, and cores keep their private 1 TB address
 * slices. Checkpoint state-hashing covers the spec string (see
 * ckpt::describeMix), so warmup-fork grouping stays correct.
 */

#ifndef DAPSIM_WORKLOAD_COMPOSE_HH
#define DAPSIM_WORKLOAD_COMPOSE_HH

#include <string>
#include <vector>

#include "trace/mixes.hh"

namespace dapsim::workload
{

/** A composed mix plus the tenant each core belongs to. */
struct ComposedMix
{
    Mix mix;
    /** Tenant display name per core ("t0", or tN.name=...). */
    std::vector<std::string> coreTenants;
};

/**
 * Compose @p workload onto @p cores cores.
 *
 *  - classic profile name ("mcf")      -> rate-N mix of that profile
 *  - engine spec ("zipf:skew=0.99")    -> every core runs the spec
 *  - mix spec ("mix:t0=zipf,t1=mcf")   -> tenants mapped to core
 *    ranges in declaration order; explicit tN.cores counts are
 *    honoured, remaining cores split evenly over the rest
 *
 * fatal() on unknown names, malformed specs, or core-count
 * mismatches — before any simulation starts.
 */
ComposedMix composeWorkload(const std::string &workload,
                            std::uint32_t cores);

} // namespace dapsim::workload

#endif // DAPSIM_WORKLOAD_COMPOSE_HH
