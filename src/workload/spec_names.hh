/**
 * @file
 * The workload-engine spec kinds, as a dependency-free name list.
 *
 * Single source of truth for "which spec kinds exist". Included both
 * by the engine itself (src/workload/spec.cc builds the schemas from
 * it) and by src/trace/workloads.cc, whose unknown-workload error
 * enumerates these alongside the classic profile names without
 * needing a link-time dependency on the engine.
 */

#ifndef DAPSIM_WORKLOAD_SPEC_NAMES_HH
#define DAPSIM_WORKLOAD_SPEC_NAMES_HH

#include <cstddef>

namespace dapsim::workload
{

/** Every spec kind the engine can parse ("zipf" in "zipf:skew=..."). */
inline constexpr const char *kSpecKinds[] = {
    "zipf",    // Zipf-ranked key popularity over the footprint
    "hotspot", // hot region + cold tail, drift-capable
    "flood",   // streaming read flood (bandwidth hog)
    "chase",   // dependent pointer chase, zero spatial locality
    "wburst",  // alternating write bursts / read phases
    "sparse",  // sector-hostile sparse stride
    "mix",     // multi-tenant composition of the above + classic profiles
};

inline constexpr std::size_t kNumSpecKinds =
    sizeof(kSpecKinds) / sizeof(kSpecKinds[0]);

} // namespace dapsim::workload

#endif // DAPSIM_WORKLOAD_SPEC_NAMES_HH
