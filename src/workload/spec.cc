#include "workload/spec.hh"

#include <cstdlib>
#include <map>

#include "common/log.hh"
#include "common/validate.hh"
#include "workload/generators.hh"
#include "workload/spec_names.hh"

namespace dapsim::workload
{

namespace
{

std::string
kindList()
{
    std::string out;
    for (const char *k : kSpecKinds) {
        if (!out.empty())
            out += ", ";
        out += k;
    }
    return out;
}

double
parseDouble(const std::string &kind, const std::string &key,
            const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal(kind + ": parameter '" + key + "' expects a number, got '" +
              text + "'");
    return v;
}

std::uint64_t
parseCount(const std::string &kind, const std::string &key,
           const std::string &text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal(kind + ": parameter '" + key +
              "' expects an integer, got '" + text + "'");
    return v;
}

std::uint64_t
parseSize(const std::string &kind, const std::string &key,
          const std::string &text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        fatal(kind + ": parameter '" + key + "' expects a size, got '" +
              text + "'");
    std::uint64_t mult = 1;
    if (*end == 'k' || *end == 'K')
        mult = kKiB, ++end;
    else if (*end == 'm' || *end == 'M')
        mult = kMiB, ++end;
    else if (*end == 'g' || *end == 'G')
        mult = kMiB * 1024, ++end;
    if (*end != '\0')
        fatal(kind + ": parameter '" + key + "' expects a size with an "
              "optional K/M/G suffix, got '" + text + "'");
    return v * mult;
}

/**
 * Typed, schema-checked reader over a spec's key=value pairs. Keys are
 * consumed as they are read; finish() rejects leftovers so a typo'd
 * parameter cannot be silently ignored.
 */
class ParamReader
{
  public:
    ParamReader(std::string kind, const ParsedSpec &ps) : kind_(std::move(kind))
    {
        for (const auto &[k, v] : ps.kv)
            if (!kv_.emplace(k, v).second)
                fatal(kind_ + ": duplicate parameter '" + k + "'");
    }

    double
    unit(const char *key, double def)
    {
        auto t = take(key);
        return checkUnitInterval(kind_ + ":" + key,
                                 t ? parseDouble(kind_, key, *t) : def);
    }

    double
    positive(const char *key, double def)
    {
        auto t = take(key);
        return checkPositive(kind_ + ":" + key,
                             t ? parseDouble(kind_, key, *t) : def);
    }

    double
    atLeastOne(const char *key, double def)
    {
        auto t = take(key);
        return checkAtLeast(kind_ + ":" + key,
                            t ? parseDouble(kind_, key, *t) : def, 1.0);
    }

    double
    mpki(const char *key, double def)
    {
        auto t = take(key);
        return checkMpki(kind_ + ":" + key,
                         t ? parseDouble(kind_, key, *t) : def);
    }

    std::uint64_t
    size(const char *key, std::uint64_t def)
    {
        auto t = take(key);
        const std::uint64_t v = t ? parseSize(kind_, key, *t) : def;
        if (v < kBlockBytes)
            fatal(kind_ + ":" + key + " must be at least " +
                  std::to_string(kBlockBytes) + " bytes");
        return v;
    }

    std::uint64_t
    count(const char *key, std::uint64_t def, std::uint64_t lo = 1)
    {
        auto t = take(key);
        return checkCountAtLeast(kind_ + ":" + key,
                                 t ? parseCount(kind_, key, *t) : def, lo);
    }

    DriftConfig
    drift()
    {
        DriftConfig d;
        if (auto t = take("drift")) {
            if (*t == "none")
                d.mode = DriftConfig::Mode::None;
            else if (*t == "rotate")
                d.mode = DriftConfig::Mode::Rotate;
            else if (*t == "jump")
                d.mode = DriftConfig::Mode::Jump;
            else if (*t == "migrate")
                d.mode = DriftConfig::Mode::Migrate;
            else
                fatal(kind_ + ":drift must be one of none, rotate, "
                      "jump, migrate — got '" + *t + "'");
        }
        d.period = count("period", d.period);
        return d;
    }

    void
    finish() const
    {
        if (kv_.empty())
            return;
        std::string bad, valid;
        for (const auto &e : kv_) {
            if (!bad.empty())
                bad += ", ";
            bad += e.first;
        }
        for (const auto &k : seen_) {
            if (!valid.empty())
                valid += ", ";
            valid += k;
        }
        fatal(kind_ + ": unknown parameter(s): " + bad +
              " (valid: " + valid + ")");
    }

  private:
    /** Consume @p key; nullptr-like empty optional when absent. */
    const std::string *
    take(const char *key)
    {
        seen_.push_back(key);
        auto it = kv_.find(key);
        if (it == kv_.end())
            return nullptr;
        cache_ = it->second;
        kv_.erase(it);
        return &cache_;
    }

    std::string kind_;
    std::map<std::string, std::string> kv_;
    std::vector<std::string> seen_;
    std::string cache_;
};

bool
isKind(const std::string &s)
{
    for (const char *k : kSpecKinds)
        if (s == k)
            return true;
    return false;
}

/** Per-core seed/base policy — mirrors trace makeGenerator exactly. */
void
foldCore(KernelParams &p, std::uint32_t core_id, std::uint64_t salt)
{
    p.base = static_cast<Addr>(core_id) << 40;
    p.seed = p.seed * 0x2545f4914f6cdd1dULL + core_id * 7919 + salt;
}

/**
 * Read one kind's parameters. When @p build is false this is a pure
 * validation pass (no CDF table construction); otherwise returns the
 * generator for @p core_id.
 */
AccessGeneratorPtr
readKind(const ParsedSpec &ps, bool build, std::uint32_t core_id,
         std::uint64_t salt)
{
    ParamReader r(ps.kind, ps);
    AccessGeneratorPtr gen;

    if (ps.kind == "zipf") {
        ZipfGenerator::Params p;
        p.skew = r.positive("skew", p.skew);
        p.footprintBytes = r.size("fp", p.footprintBytes);
        p.writeFraction = r.unit("write", p.writeFraction);
        p.mpki = r.mpki("mpki", p.mpki);
        p.runLength = r.atLeastOne("run", p.runLength);
        p.drift = r.drift();
        p.seed = r.count("seed", p.seed, 0);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<ZipfGenerator>(p);
        }
    } else if (ps.kind == "hotspot") {
        HotspotGenerator::Params p;
        p.hotFraction = r.unit("hot", p.hotFraction);
        p.hotProbability = r.unit("p", p.hotProbability);
        p.footprintBytes = r.size("fp", p.footprintBytes);
        p.writeFraction = r.unit("write", p.writeFraction);
        p.mpki = r.mpki("mpki", p.mpki);
        p.runLength = r.atLeastOne("run", p.runLength);
        p.drift = r.drift();
        p.seed = r.count("seed", p.seed, 0);
        checkPositive(ps.kind + ":hot", p.hotFraction);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<HotspotGenerator>(p);
        }
    } else if (ps.kind == "flood") {
        KernelParams p;
        p.footprintBytes = r.size("fp", 64 * kMiB);
        p.writeFraction = r.unit("write", 0.0);
        p.mpki = r.mpki("mpki", 200.0);
        p.seed = r.count("seed", p.seed, 0);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<FloodGenerator>(p);
        }
    } else if (ps.kind == "chase") {
        KernelParams p;
        p.writeFraction = 0.05;
        p.footprintBytes = r.size("fp", p.footprintBytes);
        p.writeFraction = r.unit("write", p.writeFraction);
        p.mpki = r.mpki("mpki", p.mpki);
        p.seed = r.count("seed", p.seed, 0);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<ChaseGenerator>(p);
        }
    } else if (ps.kind == "wburst") {
        WriteBurstGenerator::Params p;
        p.mpki = 40.0;
        p.footprintBytes = r.size("fp", p.footprintBytes);
        p.burst = r.count("burst", p.burst);
        p.duty = r.unit("duty", p.duty);
        p.mpki = r.mpki("mpki", p.mpki);
        p.seed = r.count("seed", p.seed, 0);
        checkPositive(ps.kind + ":duty", p.duty);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<WriteBurstGenerator>(p);
        }
    } else if (ps.kind == "sparse") {
        SparseStrideGenerator::Params p;
        p.mpki = 30.0;
        p.footprintBytes = r.size("fp", p.footprintBytes);
        p.strideBlocks = r.count("stride", p.strideBlocks);
        p.writeFraction = r.unit("write", p.writeFraction);
        p.mpki = r.mpki("mpki", p.mpki);
        p.seed = r.count("seed", p.seed, 0);
        if (build) {
            foldCore(p, core_id, salt);
            gen = std::make_unique<SparseStrideGenerator>(p);
        }
    } else {
        fatal("workload spec '" + ps.kind +
              "' cannot be instantiated directly (kinds: " + kindList() +
              ")");
    }
    r.finish();
    return gen;
}

} // namespace

ParsedSpec
parseSpec(const std::string &text)
{
    ParsedSpec ps;
    const auto colon = text.find(':');
    ps.kind = text.substr(0, colon);
    if (!isKind(ps.kind))
        fatal("unknown workload-spec kind: '" + ps.kind +
              "' (kinds: " + kindList() + ")");
    if (colon == std::string::npos)
        return ps;

    std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
        auto comma = rest.find(',', pos);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string tok = rest.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("workload spec '" + text +
                  "': expected key=value, got '" + tok + "'");
        ps.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return ps;
}

bool
looksLikeSpec(const std::string &text)
{
    return isKind(text.substr(0, text.find(':')));
}

void
validateSpec(const std::string &text)
{
    const ParsedSpec ps = parseSpec(text);
    if (ps.kind == "mix")
        fatal("mix specs are validated by composeWorkload()");
    readKind(ps, /*build=*/false, 0, 0);
}

AccessGeneratorPtr
makeSpecGenerator(const std::string &spec, std::uint32_t core_id,
                  std::uint64_t seed_salt)
{
    const ParsedSpec ps = parseSpec(spec);
    if (ps.kind == "mix")
        fatal("mix specs describe whole systems; compose them with "
              "composeWorkload() / --workload, not per-core");
    return readKind(ps, /*build=*/true, core_id, seed_salt);
}

const std::vector<SpecInfo> &
specInfos()
{
    static const std::vector<SpecInfo> infos = {
        {"zipf", "Zipf-ranked key popularity over the footprint",
         {{"skew", "Zipf exponent s > 0 (default 0.99)"},
          {"fp", "footprint, K/M/G suffix (default 32M)"},
          {"write", "write fraction [0,1] (default 0.2)"},
          {"mpki", "L2-miss MPKI (0,1000] (default 25)"},
          {"run", "mean spatial run length >= 1 (default 4)"},
          {"drift", "none|rotate|jump|migrate (default none)"},
          {"period", "accesses per drift cycle (default 200000)"},
          {"seed", "stream seed (default 1)"}}},
        {"hotspot", "hot region + cold tail, drift-capable",
         {{"hot", "hot fraction of footprint (0,1] (default 0.05)"},
          {"p", "hot-access probability [0,1] (default 0.9)"},
          {"fp", "footprint (default 32M)"},
          {"write", "write fraction (default 0.2)"},
          {"mpki", "L2-miss MPKI (default 25)"},
          {"run", "mean spatial run length (default 4)"},
          {"drift", "none|rotate|jump|migrate (default none)"},
          {"period", "accesses per drift cycle (default 200000)"},
          {"seed", "stream seed (default 1)"}}},
        {"flood", "streaming read flood (bandwidth hog)",
         {{"fp", "footprint (default 64M)"},
          {"write", "write fraction (default 0)"},
          {"mpki", "L2-miss MPKI (default 200)"},
          {"seed", "stream seed (default 1)"}}},
        {"chase", "dependent pointer chase, zero spatial locality",
         {{"fp", "footprint (default 32M)"},
          {"write", "write fraction (default 0.05)"},
          {"mpki", "L2-miss MPKI (default 25)"},
          {"seed", "stream seed (default 1)"}}},
        {"wburst", "alternating write bursts / read phases",
         {{"fp", "footprint (default 32M)"},
          {"burst", "writes per burst (default 64)"},
          {"duty", "overall write share (0,1] (default 0.5)"},
          {"mpki", "L2-miss MPKI (default 40)"},
          {"seed", "stream seed (default 1)"}}},
        {"sparse", "sector-hostile sparse stride",
         {{"fp", "footprint (default 32M)"},
          {"stride", "stride in blocks (default 8 = one/sector)"},
          {"write", "write fraction (default 0.2)"},
          {"mpki", "L2-miss MPKI (default 30)"},
          {"seed", "stream seed (default 1)"}}},
        {"mix", "multi-tenant composition sharing the MS$",
         {{"tN", "tenant N's kind or classic profile name"},
          {"tN.cores", "cores for tenant N (default: even split)"},
          {"tN.name", "display name (default tN)"},
          {"tN.<param>", "any parameter of tenant N's kind; classic "
                         "profiles accept mpki and write overrides"}}},
    };
    return infos;
}

} // namespace dapsim::workload
