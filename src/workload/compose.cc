#include "workload/compose.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/validate.hh"
#include "workload/spec.hh"

namespace dapsim::workload
{

namespace
{

/** One tenant parsed out of a mix: spec. */
struct Tenant
{
    std::string key;  ///< "t0", "t1", ...
    std::string kind; ///< engine kind or classic profile name
    std::string name; ///< display name (defaults to key)
    std::uint32_t cores = 0; ///< 0 = share the implicit remainder
    std::vector<std::pair<std::string, std::string>> params;
};

std::uint32_t
parseCores(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v == 0)
        fatal("mix: " + key + ".cores expects a positive integer, got '" +
              value + "'");
    return static_cast<std::uint32_t>(v);
}

/** Rebuild the canonical per-tenant spec text for an engine tenant. */
std::string
tenantSpec(const Tenant &t)
{
    std::string s = t.kind;
    char sep = ':';
    for (const auto &p : t.params) {
        s += sep;
        s += p.first + "=" + p.second;
        sep = ',';
    }
    return s;
}

/** Apply the tenant overrides a classic profile accepts. */
WorkloadProfile
classicTenantProfile(const Tenant &t)
{
    WorkloadProfile w = workloadByName(t.kind);
    for (const auto &p : t.params) {
        if (p.first == "mpki")
            w.params.mpki = checkMpki("mix: " + t.key + ".mpki",
                                      std::strtod(p.second.c_str(), nullptr));
        else if (p.first == "write")
            w.params.writeFraction =
                checkUnitInterval("mix: " + t.key + ".write",
                                  std::strtod(p.second.c_str(), nullptr));
        else
            fatal("mix: classic profile tenant " + t.key + " (" + t.kind +
                  ") only accepts mpki and write overrides, got '" +
                  p.first + "'");
    }
    return w;
}

ComposedMix
composeMixSpec(const std::string &text, std::uint32_t cores)
{
    const ParsedSpec ps = parseSpec(text);
    std::vector<Tenant> tenants;
    auto find = [&](const std::string &key) -> Tenant * {
        for (auto &t : tenants)
            if (t.key == key)
                return &t;
        return nullptr;
    };

    for (const auto &[key, value] : ps.kv) {
        const auto dot = key.find('.');
        const std::string tkey = key.substr(0, dot);
        if (tkey.size() < 2 || tkey[0] != 't' ||
            tkey.find_first_not_of("0123456789", 1) != std::string::npos)
            fatal("mix: expected tN / tN.param keys, got '" + key + "'");
        if (dot == std::string::npos) {
            if (find(tkey))
                fatal("mix: tenant " + tkey + " declared twice");
            Tenant t;
            t.key = tkey;
            t.name = tkey;
            t.kind = value;
            tenants.push_back(std::move(t));
            continue;
        }
        Tenant *t = find(tkey);
        if (!t)
            fatal("mix: parameter '" + key + "' before tenant '" + tkey +
                  "' is declared (write " + tkey + "=<kind> first)");
        const std::string param = key.substr(dot + 1);
        if (param == "cores")
            t->cores = parseCores(tkey, value);
        else if (param == "name")
            t->name = value;
        else
            t->params.emplace_back(param, value);
    }
    if (tenants.empty())
        fatal("mix: no tenants declared (expected t0=<kind>, ...)");

    // Distribute cores: explicit counts are reserved, the rest split
    // evenly over implicit tenants (earlier tenants take the
    // remainder).
    std::uint32_t explicitSum = 0, implicitCount = 0;
    for (const auto &t : tenants) {
        explicitSum += t.cores;
        implicitCount += t.cores == 0;
    }
    if (explicitSum > cores || (explicitSum == cores && implicitCount))
        fatal("mix: tenant core counts need more than the " +
              std::to_string(cores) + " available cores");
    if (!implicitCount && explicitSum != cores)
        fatal("mix: tenant core counts sum to " +
              std::to_string(explicitSum) + " but the system has " +
              std::to_string(cores) + " cores");
    if (implicitCount) {
        const std::uint32_t left = cores - explicitSum;
        if (left < implicitCount)
            fatal("mix: " + std::to_string(implicitCount) +
                  " tenants share only " + std::to_string(left) +
                  " remaining cores");
        std::uint32_t idx = 0;
        for (auto &t : tenants)
            if (t.cores == 0) {
                t.cores = left / implicitCount +
                          (idx < left % implicitCount ? 1 : 0);
                ++idx;
            }
    }

    ComposedMix out;
    out.mix.name = text;
    out.mix.kind = Mix::Kind::Hetero;
    for (const auto &t : tenants) {
        WorkloadProfile w;
        if (looksLikeSpec(t.kind)) {
            const std::string sub = tenantSpec(t);
            validateSpec(sub);
            w.name = t.kind;
            w.spec = sub;
        } else {
            w = classicTenantProfile(t);
        }
        for (std::uint32_t c = 0; c < t.cores; ++c) {
            out.mix.apps.push_back(w);
            out.coreTenants.push_back(t.name);
        }
    }
    return out;
}

} // namespace

ComposedMix
composeWorkload(const std::string &workload, std::uint32_t cores)
{
    if (cores == 0)
        fatal("composeWorkload: zero cores");

    if (!looksLikeSpec(workload)) {
        // Classic profile name; workloadByName() fatals with the full
        // roster if it is unknown.
        ComposedMix out;
        out.mix = rateMix(workloadByName(workload), cores);
        out.coreTenants.assign(cores, workload);
        return out;
    }

    const ParsedSpec ps = parseSpec(workload);
    if (ps.kind == "mix")
        return composeMixSpec(workload, cores);

    validateSpec(workload);
    WorkloadProfile w;
    w.name = ps.kind;
    w.spec = workload;
    ComposedMix out;
    out.mix.name = workload;
    out.mix.kind = Mix::Kind::Hetero;
    for (std::uint32_t c = 0; c < cores; ++c) {
        out.mix.apps.push_back(w);
        out.coreTenants.push_back(ps.kind);
    }
    return out;
}

} // namespace dapsim::workload
