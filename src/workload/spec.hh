/**
 * @file
 * Declarative workload-spec grammar for the workload engine.
 *
 * A spec is `kind` or `kind:key=value,key=value,...`:
 *
 *     zipf:skew=0.99,fp=64M,drift=rotate,period=100000
 *     hotspot:hot=0.05,p=0.9,drift=jump
 *     flood:fp=128M,mpki=200
 *     mix:t0=zipf,t0.skew=0.99,t0.cores=4,t1=flood,t1.cores=4
 *
 * Size values accept K/M/G suffixes (KiB multiples). Malformed specs
 * — unknown kind, unknown parameter, out-of-range value — die with a
 * fatal() naming the offending key and the valid choices, so bad
 * configurations are rejected before any sweep job is submitted.
 * Every numeric dial funnels through common/validate.hh, shared with
 * the classic SyntheticParams validation.
 */

#ifndef DAPSIM_WORKLOAD_SPEC_HH
#define DAPSIM_WORKLOAD_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "trace/access_gen.hh"

namespace dapsim::workload
{

/** A spec split into its kind and ordered key=value pairs. */
struct ParsedSpec
{
    std::string kind;
    std::vector<std::pair<std::string, std::string>> kv;
};

/** Parse @p text; fatal() on syntax errors or an unknown kind. */
ParsedSpec parseSpec(const std::string &text);

/** True if @p text names a spec kind (bare or with ':' params). */
bool looksLikeSpec(const std::string &text);

/**
 * Validate a non-mix spec's parameters without building the generator
 * (no CDF tables). fatal() on any unknown key or out-of-range value.
 */
void validateSpec(const std::string &text);

/**
 * Build the generator for one core running @p spec (non-mix kinds).
 * Applies the same per-core address-slice and seed-derivation policy
 * as the classic trace makeGenerator: base = core_id << 40, seed
 * folded with core_id and @p seed_salt.
 */
AccessGeneratorPtr makeSpecGenerator(const std::string &spec,
                                     std::uint32_t core_id,
                                     std::uint64_t seed_salt = 0);

/** One parameter in a kind's schema (for --list output). */
struct SpecParamInfo
{
    const char *key;
    const char *help;
};

/** One spec kind's schema. */
struct SpecInfo
{
    const char *kind;
    const char *help;
    std::vector<SpecParamInfo> params;
};

/** Schemas for every spec kind, in kSpecKinds order. */
const std::vector<SpecInfo> &specInfos();

} // namespace dapsim::workload

#endif // DAPSIM_WORKLOAD_SPEC_HH
