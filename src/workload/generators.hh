/**
 * @file
 * Workload-engine access generators.
 *
 * Six named, composable primitives behind the AccessGenerator
 * interface:
 *
 *  - ZipfGenerator: Zipf-ranked key popularity, ranks scrambled over
 *    the footprint by a Feistel permutation, optional phase drift.
 *  - HotspotGenerator: hot region + cold tail whose hot set drifts.
 *  - FloodGenerator: sequential read flood (bandwidth hog).
 *  - ChaseGenerator: dependent pointer chase over a full-cycle
 *    pseudorandom tour — zero spatial locality, prefetch-hostile.
 *  - WriteBurstGenerator: alternating write bursts and read phases.
 *  - SparseStrideGenerator: sector-hostile stride touching one block
 *    per sector.
 *
 * Determinism contract: every generator is a pure function of its
 * parameter block (seed included); two instances built from equal
 * params produce byte-identical streams. Checkpoint contract: save()
 * captures the Rng engine state plus the few position counters, so a
 * restored instance continues the exact uninterrupted stream — drift
 * schedules are keyed off the saved access counter, never wall-clock
 * or sim time.
 */

#ifndef DAPSIM_WORKLOAD_GENERATORS_HH
#define DAPSIM_WORKLOAD_GENERATORS_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access_gen.hh"
#include "workload/zipf.hh"

namespace dapsim::workload
{

/** How the hot set moves over the footprint as the stream advances. */
struct DriftConfig
{
    enum class Mode
    {
        None,    ///< stationary distribution
        Rotate,  ///< continuous offset sweep, one revolution per period
        Jump,    ///< abrupt pseudorandom re-placement each period
        Migrate, ///< gradual probabilistic migration between phases
    };

    Mode mode = Mode::None;

    /** Accesses per drift cycle (revolution / phase). */
    std::uint64_t period = 200'000;
};

/**
 * Block offset the drift schedule applies at access number @p n.
 * Deterministic in (config, seed, n) except Migrate, which blends two
 * phase placements with a draw from @p rng (checkpointed anyway).
 */
std::uint64_t driftOffset(const DriftConfig &d, std::uint64_t blocks,
                          std::uint64_t seed, std::uint64_t n, Rng &rng);

/** Dials shared by every engine kernel. */
struct KernelParams
{
    std::uint64_t footprintBytes = 32 * kMiB;
    double writeFraction = 0.2;
    double mpki = 25.0;
    Addr base = 0;
    std::uint64_t seed = 1;
};

/** Zipf-popularity generator with optional phase drift. */
class ZipfGenerator final : public AccessGenerator
{
  public:
    struct Params : KernelParams
    {
        double skew = 0.99;
        double runLength = 4.0;
        DriftConfig drift;
    };

    explicit ZipfGenerator(const Params &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    std::uint64_t pickBlock();

    Params p_;
    std::uint64_t blocks_;
    ZipfSampler zipf_;
    BlockPermutation perm_;
    std::uint64_t span_;
    std::uint64_t rem_;
    Rng rng_;
    std::uint64_t accesses_ = 0;
    std::uint64_t runPtr_ = 0;
    std::uint32_t runLeft_ = 0;
};

/** Hot-region generator whose hot set drifts on a schedule. */
class HotspotGenerator final : public AccessGenerator
{
  public:
    struct Params : KernelParams
    {
        double hotFraction = 0.05;
        double hotProbability = 0.9;
        double runLength = 4.0;
        DriftConfig drift;
    };

    explicit HotspotGenerator(const Params &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    Params p_;
    std::uint64_t blocks_;
    std::uint64_t hotBlocks_;
    Rng rng_;
    std::uint64_t accesses_ = 0;
    std::uint64_t runPtr_ = 0;
    std::uint32_t runLeft_ = 0;
};

/** Sequential streaming flood: maximum bandwidth demand. */
class FloodGenerator final : public AccessGenerator
{
  public:
    explicit FloodGenerator(const KernelParams &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    KernelParams p_;
    std::uint64_t blocks_;
    Rng rng_;
    std::uint64_t ptr_ = 0;
};

/** Dependent pointer chase over a full-cycle pseudorandom tour. */
class ChaseGenerator final : public AccessGenerator
{
  public:
    explicit ChaseGenerator(const KernelParams &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    KernelParams p_;
    std::uint64_t blocks_;
    BlockPermutation perm_;
    Rng rng_;
    std::uint64_t counter_ = 0;
};

/** Alternating sequential write bursts and random read phases. */
class WriteBurstGenerator final : public AccessGenerator
{
  public:
    struct Params : KernelParams
    {
        std::uint64_t burst = 64; ///< writes per burst
        double duty = 0.5;        ///< overall write fraction (0, 1]
    };

    explicit WriteBurstGenerator(const Params &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    Params p_;
    std::uint64_t blocks_;
    std::uint64_t cycleLen_;
    Rng rng_;
    std::uint64_t pos_ = 0;     ///< position within the burst cycle
    std::uint64_t writePtr_ = 0;
};

/** Sector-hostile sparse stride: one block per sector. */
class SparseStrideGenerator final : public AccessGenerator
{
  public:
    struct Params : KernelParams
    {
        std::uint64_t strideBlocks = 8; ///< 8 blocks = one 512 B sector
    };

    explicit SparseStrideGenerator(const Params &p);

    bool next(TraceRequest &out) override;
    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    Params p_;
    std::uint64_t blocks_;
    Rng rng_;
    std::uint64_t ptr_ = 0;
};

} // namespace dapsim::workload

#endif // DAPSIM_WORKLOAD_GENERATORS_HH
