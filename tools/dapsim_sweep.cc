/**
 * @file
 * dapsim_sweep — parallel grid-sweep driver.
 *
 * Expands an arch x capacity x policy x workload grid into jobs, runs
 * them on a thread pool, and writes results as a console table and/or
 * a JSON-lines artifact. Results are emitted in grid order no matter
 * how jobs interleave, and the metrics are bit-identical for any
 * --jobs value (each job owns its whole simulation state).
 *
 * The grid expansion itself lives in src/expd/grid.cc and is shared
 * with the persistent experiment service: --dry-run prints the
 * expansion (stable job ids + warmup group keys) without simulating,
 * and --store DIR submits the grid to a durable `dapsim.expq.v1`
 * store for dapsim_expd workers instead of running it here.
 *
 * Examples:
 *   dapsim_sweep --policy baseline,dap --workload sensitive --jobs 4
 *   dapsim_sweep --arch sectored,alloy --workload mcf,lbm \
 *                --jobs 8 --json bench/out/sweep.jsonl
 *   dapsim_sweep --capacity-mb 32,64,128 --policy dap --workload all
 *   dapsim_sweep --workload all --dry-run
 *   dapsim_sweep --workload all --store bench/out/store
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "exp/result_sink.hh"
#include "exp/sweep_runner.hh"
#include "expd/store.hh"
#include "workload/spec.hh"

using namespace dapsim;

namespace
{

struct Options
{
    expd::GridOptions grid;
    std::size_t jobs = 1;
    std::string jsonPath;
    bool quiet = false;
    bool dryRun = false;
    std::string storeDir;
    bool warmupFork = false;
    std::string ckptDir;

    // Per-job observability (see src/obs/): every selected output
    // goes to its own file under obsDir, so parallel jobs never
    // interleave a stream.
    std::string obsDir;
    std::uint64_t sampleEvery = 0;
    obs::SampleFormat sampleFormat = obs::SampleFormat::Jsonl;
    bool dapTrace = false;
    bool chromeTrace = false;
    std::string phaseTracePath;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: dapsim_sweep [options]\n"
        "  --arch LIST          sectored|alloy|edram (comma-separated,"
        " default sectored)\n"
        "  --policy LIST        baseline|dap|sbd|sbd-wt|batman|bear\n"
        "                       (default baseline,dap)\n"
        "  --workload LIST      profile names, all|sensitive|"
        "insensitive, or\n"
        "                       workload-engine specs "
        "(zipf:skew=0.99,fp=64M);\n"
        "                       a list element containing '=' continues"
        " the\n"
        "                       previous spec (default sensitive)\n"
        "  --capacity-mb LIST   MS$ capacities to sweep (default: "
        "preset)\n"
        "  --cores N            cores per system (default 8)\n"
        "  --instr N            instructions per core (default "
        "120000)\n"
        "  --seed N             workload seed salt (default 0)\n"
        "  --warmup N           warm-up accesses per core (default: "
        "preset)\n"
        "  --jobs N             worker threads (default 1)\n"
        "  --fidelity MODE      exact (default) | sampled | analytic\n"
        "  --fidelity-detail N  sampled: detailed instructions per core"
        " per\n"
        "                       period (default 2000)\n"
        "  --fidelity-period N  sampled: sampling period in "
        "instructions\n"
        "                       per core (default 10000)\n"
        "  --remote             enable the remote bandwidth tier\n"
        "  --remote-scale S     remote BW = DDR BW / S (default 4)\n"
        "  --remote-latency-ns N  remote latency adder (default 120)\n"
        "  --remote-outstanding N remote credit window (default 32)\n"
        "  --json FILE          also write JSON-lines results to "
        "FILE\n"
        "  --dry-run            print the expanded grid (index, job "
        "id,\n"
        "                       warmup group, label) and exit\n"
        "  --store DIR          submit the grid as a dapsim.expq.v1 "
        "store\n"
        "                       for dapsim_expd workers instead of "
        "running\n"
        "  --warmup-fork        share one warm-up per (arch, workload,"
        " seed)\n"
        "                       group via checkpoints (bit-identical "
        "results)\n"
        "  --ckpt-dir DIR       keep/reuse warm-up checkpoints in DIR "
        "(implies\n"
        "                       --warmup-fork)\n"
        "  --obs-dir DIR        write per-job observability files into "
        "DIR\n"
        "  --sample-every N     per-job stat time series every N CPU "
        "cycles\n"
        "  --sample-format F    jsonl (default) or csv\n"
        "  --dap-trace          per-job DAP decision traces (JSONL)\n"
        "  --chrome-trace       per-job Chrome trace_event files\n"
        "  --phase-trace FILE   wall-clock job-scheduling trace "
        "(Chrome JSON)\n"
        "  --quiet              suppress the console table\n"
        "  --list               list workload profiles\n");
    std::exit(1);
}

/** Parse a non-negative decimal integer; fatal() on malformation. */
std::uint64_t
parseNumber(const std::string &flag, const std::string &s)
{
    if (s.empty())
        fatal(flag + " expects a number");
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        fatal(flag + " expects a number, got '" + s + "'");
    return v;
}

/** Filesystem-safe job label: '/' and other separators become '_'. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '.'))
            c = '_';
    }
    return out;
}

/** `DIR/job###-<label>` — the per-job observability path stem. */
std::string
obsStem(const std::string &dir, std::size_t index,
        const std::string &label)
{
    char num[16];
    std::snprintf(num, sizeof(num), "job%03zu", index);
    return dir + "/" + num + "-" + sanitizeLabel(label);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--arch")
            opt.grid.archs = expd::splitList(value());
        else if (a == "--policy")
            opt.grid.policies = expd::splitList(value());
        else if (a == "--workload")
            opt.grid.workloads = expd::splitWorkloadList(value());
        else if (a == "--capacity-mb") {
            opt.grid.capacitiesMb.clear();
            for (const auto &c : expd::splitList(value()))
                opt.grid.capacitiesMb.push_back(parseNumber(a, c));
        } else if (a == "--cores")
            opt.grid.cores = static_cast<std::uint32_t>(
                parseNumber(a, value()));
        else if (a == "--instr")
            opt.grid.instr = parseNumber(a, value());
        else if (a == "--seed")
            opt.grid.seed = parseNumber(a, value());
        else if (a == "--warmup")
            opt.grid.warmup = parseNumber(a, value());
        else if (a == "--jobs")
            opt.jobs = parseNumber(a, value());
        else if (a == "--json")
            opt.jsonPath = value();
        else if (a == "--dry-run")
            opt.dryRun = true;
        else if (a == "--store")
            opt.storeDir = value();
        else if (a == "--fidelity")
            opt.grid.fidelity = value();
        else if (a == "--fidelity-detail")
            opt.grid.fidelityDetail = parseNumber(a, value());
        else if (a == "--fidelity-period")
            opt.grid.fidelityPeriod = parseNumber(a, value());
        else if (a == "--remote")
            opt.grid.remote = true;
        else if (a == "--remote-scale")
            opt.grid.remoteScale = std::stod(value());
        else if (a == "--remote-latency-ns")
            opt.grid.remoteLatencyNs = std::stod(value());
        else if (a == "--remote-outstanding")
            opt.grid.remoteOutstanding = static_cast<std::uint32_t>(
                parseNumber(a, value()));
        else if (a == "--warmup-fork")
            opt.warmupFork = true;
        else if (a == "--ckpt-dir")
            opt.ckptDir = value();
        else if (a == "--obs-dir")
            opt.obsDir = value();
        else if (a == "--sample-every")
            opt.sampleEvery = parseNumber(a, value());
        else if (a == "--sample-format") {
            const std::string f = value();
            if (f == "jsonl")
                opt.sampleFormat = obs::SampleFormat::Jsonl;
            else if (f == "csv")
                opt.sampleFormat = obs::SampleFormat::Csv;
            else
                fatal("--sample-format expects jsonl or csv");
        } else if (a == "--dap-trace")
            opt.dapTrace = true;
        else if (a == "--chrome-trace")
            opt.chromeTrace = true;
        else if (a == "--phase-trace")
            opt.phaseTracePath = value();
        else if (a == "--quiet")
            opt.quiet = true;
        else if (a == "--list") {
            std::printf("profiles:\n");
            for (const auto &w : allWorkloads())
                std::printf("  %-18s %s\n", w.name.c_str(),
                            w.bandwidthSensitive
                                ? "bandwidth-sensitive"
                                : "bandwidth-insensitive");
            std::printf("workload-engine specs "
                        "(kind:key=value,...):\n");
            for (const auto &info : workload::specInfos()) {
                std::printf("  %-18s %s\n", info.kind, info.help);
                for (const auto &p : info.params)
                    std::printf("    %-16s %s\n", p.key, p.help);
            }
            return 0;
        } else {
            usage();
        }
    }
    if (opt.jobs == 0)
        opt.jobs = 1;

    const bool perJobObs =
        opt.sampleEvery != 0 || opt.dapTrace || opt.chromeTrace;
    if (perJobObs && opt.obsDir.empty())
        fatal("--sample-every/--dap-trace/--chrome-trace require "
              "--obs-dir");
    if (!opt.obsDir.empty() && !perJobObs)
        fatal("--obs-dir needs --sample-every, --dap-trace or "
              "--chrome-trace");
    if (perJobObs) {
        std::error_code ec;
        std::filesystem::create_directories(opt.obsDir, ec);
        if (ec)
            fatal("cannot create " + opt.obsDir + ": " + ec.message());
    }

    if (opt.dryRun) {
        const auto expanded = expd::expandGrid(opt.grid);
        for (std::size_t i = 0; i < expanded.size(); ++i)
            std::printf("%zu\t%s\t%s\t%s\n", i,
                        expanded[i].id.c_str(),
                        expanded[i].group.empty()
                            ? "-"
                            : expanded[i].group.c_str(),
                        expanded[i].spec.displayLabel().c_str());
        return 0;
    }

    if (!opt.storeDir.empty()) {
        try {
            const expd::Store store =
                expd::Store::create(opt.storeDir, opt.grid);
            std::fprintf(stderr,
                         "submitted %zu jobs to %s; run workers "
                         "with:\n  dapsim_expd run --store %s\n",
                         store.jobs().size(), opt.storeDir.c_str(),
                         opt.storeDir.c_str());
        } catch (const std::exception &e) {
            fatal(e.what());
        }
        return 0;
    }

    std::vector<expd::ExpandedJob> expanded =
        expd::expandGrid(opt.grid);
    if (expanded.empty())
        fatal("empty sweep grid");

    exp::SweepRunner runner;
    for (expd::ExpandedJob &job : expanded) {
        if (perJobObs && !job.spec.custom) {
            const std::string stem = obsStem(
                opt.obsDir, runner.jobCount(),
                job.spec.mix.name + "/" +
                    exp::policyKindName(job.spec.policy));
            if (opt.sampleEvery) {
                job.spec.cfg.obs.sampleEvery = opt.sampleEvery;
                job.spec.cfg.obs.sampleFormat = opt.sampleFormat;
                job.spec.cfg.obs.sampleOut =
                    stem + (opt.sampleFormat == obs::SampleFormat::Csv
                                ? ".samples.csv"
                                : ".samples.jsonl");
            }
            if (opt.dapTrace)
                job.spec.cfg.obs.dapTrace = stem + ".daptrace.jsonl";
            if (opt.chromeTrace)
                job.spec.cfg.obs.chromeTrace = stem + ".trace.json";
        }
        runner.add(std::move(job.spec));
    }

    exp::ConsoleTableSink console;
    if (!opt.quiet)
        runner.addSink(&console);

    std::ofstream json_file;
    exp::JsonLinesSink json_sink(json_file);
    if (!opt.jsonPath.empty()) {
        json_file.open(opt.jsonPath);
        if (!json_file)
            fatal("cannot open " + opt.jsonPath + " for writing");
        runner.addSink(&json_sink);
    }

    const bool fork = opt.warmupFork || !opt.ckptDir.empty();
    if (fork)
        runner.setWarmupFork(true, opt.ckptDir);
    if (!opt.phaseTracePath.empty())
        runner.setPhaseTrace(opt.phaseTracePath);

    runner.setProgress(true);
    const auto results = runner.run(opt.jobs);

    std::size_t failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    std::fprintf(stderr, "sweep complete: %zu jobs, %zu failed\n",
                 results.size(), failed);
    if (fork)
        std::fprintf(stderr,
                     "warmup-fork: %llu shared warm-ups executed\n",
                     static_cast<unsigned long long>(
                         runner.warmupsExecuted()));
    return failed == results.size() ? 1 : 0;
}
