/**
 * @file
 * dapsim_sweep — parallel grid-sweep driver.
 *
 * Expands an arch x capacity x policy x workload grid into jobs, runs
 * them on a thread pool, and writes results as a console table and/or
 * a JSON-lines artifact. Results are emitted in grid order no matter
 * how jobs interleave, and the metrics are bit-identical for any
 * --jobs value (each job owns its whole simulation state).
 *
 * Examples:
 *   dapsim_sweep --policy baseline,dap --workload sensitive --jobs 4
 *   dapsim_sweep --arch sectored,alloy --workload mcf,lbm \
 *                --jobs 8 --json bench/out/sweep.jsonl
 *   dapsim_sweep --capacity-mb 32,64,128 --policy dap --workload all
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/result_sink.hh"
#include "exp/sweep_runner.hh"
#include "sim/presets.hh"
#include "workload/compose.hh"
#include "workload/spec.hh"

using namespace dapsim;

namespace
{

struct Options
{
    std::vector<std::string> archs{"sectored"};
    std::vector<std::string> policies{"baseline", "dap"};
    std::vector<std::string> workloads{"sensitive"};
    std::vector<std::uint64_t> capacitiesMb{0}; // 0 = preset default
    std::uint32_t cores = 8;
    std::uint64_t instr = 120'000;
    std::uint64_t seed = 0;
    std::size_t jobs = 1;
    std::string jsonPath;
    bool quiet = false;
    bool warmupFork = false;
    std::string ckptDir;
    bool remote = false;
    double remoteScale = 4.0;
    double remoteLatencyNs = 120.0;
    std::uint32_t remoteOutstanding = 32;

    // Per-job observability (see src/obs/): every selected output
    // goes to its own file under obsDir, so parallel jobs never
    // interleave a stream.
    std::string obsDir;
    std::uint64_t sampleEvery = 0;
    obs::SampleFormat sampleFormat = obs::SampleFormat::Jsonl;
    bool dapTrace = false;
    bool chromeTrace = false;
    std::string phaseTracePath;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: dapsim_sweep [options]\n"
        "  --arch LIST          sectored|alloy|edram (comma-separated,"
        " default sectored)\n"
        "  --policy LIST        baseline|dap|sbd|sbd-wt|batman|bear\n"
        "                       (default baseline,dap)\n"
        "  --workload LIST      profile names, all|sensitive|"
        "insensitive, or\n"
        "                       workload-engine specs "
        "(zipf:skew=0.99,fp=64M);\n"
        "                       a list element containing '=' continues"
        " the\n"
        "                       previous spec (default sensitive)\n"
        "  --capacity-mb LIST   MS$ capacities to sweep (default: "
        "preset)\n"
        "  --cores N            cores per system (default 8)\n"
        "  --instr N            instructions per core (default "
        "120000)\n"
        "  --seed N             workload seed salt (default 0)\n"
        "  --jobs N             worker threads (default 1)\n"
        "  --remote             enable the remote bandwidth tier\n"
        "  --remote-scale S     remote BW = DDR BW / S (default 4)\n"
        "  --remote-latency-ns N  remote latency adder (default 120)\n"
        "  --remote-outstanding N remote credit window (default 32)\n"
        "  --json FILE          also write JSON-lines results to "
        "FILE\n"
        "  --warmup-fork        share one warm-up per (arch, workload,"
        " seed)\n"
        "                       group via checkpoints (bit-identical "
        "results)\n"
        "  --ckpt-dir DIR       keep/reuse warm-up checkpoints in DIR "
        "(implies\n"
        "                       --warmup-fork)\n"
        "  --obs-dir DIR        write per-job observability files into "
        "DIR\n"
        "  --sample-every N     per-job stat time series every N CPU "
        "cycles\n"
        "  --sample-format F    jsonl (default) or csv\n"
        "  --dap-trace          per-job DAP decision traces (JSONL)\n"
        "  --chrome-trace       per-job Chrome trace_event files\n"
        "  --phase-trace FILE   wall-clock job-scheduling trace "
        "(Chrome JSON)\n"
        "  --quiet              suppress the console table\n"
        "  --list               list workload profiles\n");
    std::exit(1);
}

/** Parse a non-negative decimal integer; fatal() on malformation. */
std::uint64_t
parseNumber(const std::string &flag, const std::string &s)
{
    if (s.empty())
        fatal(flag + " expects a number");
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        fatal(flag + " expects a number, got '" + s + "'");
    return v;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    if (out.empty())
        fatal("empty list argument");
    return out;
}

/**
 * Split a --workload list. Workload-engine specs contain commas
 * themselves (zipf:skew=0.99,fp=64M), so after the plain comma split
 * any token that is a key=value continuation — it has an '=' before
 * any ':' — is folded back into the preceding element. Classic
 * profile names never contain '=', so their behaviour is unchanged:
 *
 *   "mcf,zipf:skew=0.99,fp=64M,flood" ->
 *       ["mcf", "zipf:skew=0.99,fp=64M", "flood"]
 */
std::vector<std::string>
splitWorkloadList(const std::string &s)
{
    std::vector<std::string> out;
    for (const auto &tok : splitList(s)) {
        const std::size_t eq = tok.find('=');
        const std::size_t colon = tok.find(':');
        const bool continuation =
            eq != std::string::npos &&
            (colon == std::string::npos || eq < colon);
        if (continuation && !out.empty())
            out.back() += "," + tok;
        else if (continuation)
            fatal("--workload: '" + tok +
                  "' continues a spec but no spec precedes it");
        else
            out.push_back(tok);
    }
    return out;
}

/** A grid workload: a resolved profile, a composed workload-engine
 *  spec, or an unknown name kept so its grid points surface as error
 *  records instead of killing the whole sweep. */
struct GridWorkload
{
    WorkloadProfile profile;
    bool known = true;
    bool isSpec = false;
    workload::ComposedMix composed; ///< when isSpec
};

std::vector<GridWorkload>
resolveWorkloads(const std::vector<std::string> &names,
                 std::uint32_t cores)
{
    std::vector<GridWorkload> out;
    auto push = [&out](const WorkloadProfile &w) {
        out.push_back({w, true, false, {}});
    };
    for (const auto &name : names) {
        if (name == "all") {
            for (const auto &w : allWorkloads())
                push(w);
        } else if (name == "sensitive") {
            for (const auto &w : bandwidthSensitiveWorkloads())
                push(w);
        } else if (name == "insensitive") {
            for (const auto &w : bandwidthInsensitiveWorkloads())
                push(w);
        } else {
            bool found = false;
            for (const auto &w : allWorkloads()) {
                if (w.name == name) {
                    push(w);
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            if (workload::looksLikeSpec(name)) {
                // Malformed specs fatal() here, before any job runs.
                GridWorkload gw;
                gw.known = true;
                gw.isSpec = true;
                gw.composed = workload::composeWorkload(name, cores);
                out.push_back(std::move(gw));
            } else {
                WorkloadProfile unknown;
                unknown.name = name;
                out.push_back({unknown, false, false, {}});
            }
        }
    }
    return out;
}

/** Filesystem-safe job label: '/' and other separators become '_'. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '.'))
            c = '_';
    }
    return out;
}

/** `DIR/job###-<label>` — the per-job observability path stem. */
std::string
obsStem(const std::string &dir, std::size_t index,
        const std::string &label)
{
    char num[16];
    std::snprintf(num, sizeof(num), "job%03zu", index);
    return dir + "/" + num + "-" + sanitizeLabel(label);
}

SystemConfig
archConfig(const std::string &arch, std::uint64_t capacity_mb)
{
    SystemConfig cfg;
    if (arch == "sectored") {
        cfg = presets::sectoredSystem8();
        if (capacity_mb)
            cfg.sectored.capacityBytes = capacity_mb * kMiB;
    } else if (arch == "alloy") {
        cfg = presets::alloySystem8();
        if (capacity_mb)
            cfg.alloy.capacityBytes = capacity_mb * kMiB;
    } else if (arch == "edram") {
        cfg = presets::edramSystem8(capacity_mb ? capacity_mb : 4);
    } else {
        fatal("unknown arch: " + arch);
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--arch")
            opt.archs = splitList(value());
        else if (a == "--policy")
            opt.policies = splitList(value());
        else if (a == "--workload")
            opt.workloads = splitWorkloadList(value());
        else if (a == "--capacity-mb") {
            opt.capacitiesMb.clear();
            for (const auto &c : splitList(value()))
                opt.capacitiesMb.push_back(parseNumber(a, c));
        } else if (a == "--cores")
            opt.cores = static_cast<std::uint32_t>(
                parseNumber(a, value()));
        else if (a == "--instr")
            opt.instr = parseNumber(a, value());
        else if (a == "--seed")
            opt.seed = parseNumber(a, value());
        else if (a == "--jobs")
            opt.jobs = parseNumber(a, value());
        else if (a == "--json")
            opt.jsonPath = value();
        else if (a == "--remote")
            opt.remote = true;
        else if (a == "--remote-scale")
            opt.remoteScale = std::stod(value());
        else if (a == "--remote-latency-ns")
            opt.remoteLatencyNs = std::stod(value());
        else if (a == "--remote-outstanding")
            opt.remoteOutstanding = static_cast<std::uint32_t>(
                parseNumber(a, value()));
        else if (a == "--warmup-fork")
            opt.warmupFork = true;
        else if (a == "--ckpt-dir")
            opt.ckptDir = value();
        else if (a == "--obs-dir")
            opt.obsDir = value();
        else if (a == "--sample-every")
            opt.sampleEvery = parseNumber(a, value());
        else if (a == "--sample-format") {
            const std::string f = value();
            if (f == "jsonl")
                opt.sampleFormat = obs::SampleFormat::Jsonl;
            else if (f == "csv")
                opt.sampleFormat = obs::SampleFormat::Csv;
            else
                fatal("--sample-format expects jsonl or csv");
        } else if (a == "--dap-trace")
            opt.dapTrace = true;
        else if (a == "--chrome-trace")
            opt.chromeTrace = true;
        else if (a == "--phase-trace")
            opt.phaseTracePath = value();
        else if (a == "--quiet")
            opt.quiet = true;
        else if (a == "--list") {
            std::printf("profiles:\n");
            for (const auto &w : allWorkloads())
                std::printf("  %-18s %s\n", w.name.c_str(),
                            w.bandwidthSensitive
                                ? "bandwidth-sensitive"
                                : "bandwidth-insensitive");
            std::printf("workload-engine specs "
                        "(kind:key=value,...):\n");
            for (const auto &info : workload::specInfos()) {
                std::printf("  %-18s %s\n", info.kind, info.help);
                for (const auto &p : info.params)
                    std::printf("    %-16s %s\n", p.key, p.help);
            }
            return 0;
        } else {
            usage();
        }
    }
    if (opt.jobs == 0)
        opt.jobs = 1;

    const bool perJobObs =
        opt.sampleEvery != 0 || opt.dapTrace || opt.chromeTrace;
    if (perJobObs && opt.obsDir.empty())
        fatal("--sample-every/--dap-trace/--chrome-trace require "
              "--obs-dir");
    if (!opt.obsDir.empty() && !perJobObs)
        fatal("--obs-dir needs --sample-every, --dap-trace or "
              "--chrome-trace");
    if (perJobObs) {
        std::error_code ec;
        std::filesystem::create_directories(opt.obsDir, ec);
        if (ec)
            fatal("cannot create " + opt.obsDir + ": " + ec.message());
    }

    const std::vector<GridWorkload> workloads =
        resolveWorkloads(opt.workloads, opt.cores);

    exp::SweepRunner runner;
    for (const auto &arch : opt.archs) {
        for (std::uint64_t cap : opt.capacitiesMb) {
            SystemConfig cfg = archConfig(arch, cap);
            cfg.numCores = opt.cores;
            if (opt.remote) {
                cfg.remote.enabled = true;
                cfg.remote.bwScaleFactor = opt.remoteScale;
                cfg.remote.addLatencyNs = opt.remoteLatencyNs;
                cfg.remote.maxOutstanding = opt.remoteOutstanding;
            }
            for (const auto &gw : workloads) {
                for (const auto &policy : opt.policies) {
                    exp::JobSpec spec;
                    spec.cfg = cfg;
                    spec.policy = exp::policyKindFromName(policy);
                    spec.instr = opt.instr;
                    spec.seedSalt = opt.seed;
                    spec.knobs["arch"] = arch;
                    if (cap)
                        spec.knobs["capacity_mb"] =
                            std::to_string(cap);
                    if (gw.isSpec) {
                        spec.mix = gw.composed.mix;
                        spec.cfg.obs.coreTenants =
                            gw.composed.coreTenants;
                    } else if (gw.known) {
                        spec.mix = rateMix(gw.profile, opt.cores);
                    } else {
                        spec.mix.name = gw.profile.name;
                        spec.label = gw.profile.name + "/" + policy;
                        const std::string name = gw.profile.name;
                        spec.custom = [name]() -> RunResult {
                            throw std::invalid_argument(
                                "unknown workload: " + name);
                        };
                    }
                    if (perJobObs && gw.known) {
                        const std::string stem = obsStem(
                            opt.obsDir, runner.jobCount(),
                            spec.mix.name + "/" + policy);
                        if (opt.sampleEvery) {
                            spec.cfg.obs.sampleEvery = opt.sampleEvery;
                            spec.cfg.obs.sampleFormat =
                                opt.sampleFormat;
                            spec.cfg.obs.sampleOut =
                                stem + (opt.sampleFormat ==
                                                obs::SampleFormat::Csv
                                            ? ".samples.csv"
                                            : ".samples.jsonl");
                        }
                        if (opt.dapTrace)
                            spec.cfg.obs.dapTrace =
                                stem + ".daptrace.jsonl";
                        if (opt.chromeTrace)
                            spec.cfg.obs.chromeTrace =
                                stem + ".trace.json";
                    }
                    runner.add(std::move(spec));
                }
            }
        }
    }
    if (runner.jobCount() == 0)
        fatal("empty sweep grid");

    exp::ConsoleTableSink console;
    if (!opt.quiet)
        runner.addSink(&console);

    std::ofstream json_file;
    exp::JsonLinesSink json_sink(json_file);
    if (!opt.jsonPath.empty()) {
        json_file.open(opt.jsonPath);
        if (!json_file)
            fatal("cannot open " + opt.jsonPath + " for writing");
        runner.addSink(&json_sink);
    }

    const bool fork = opt.warmupFork || !opt.ckptDir.empty();
    if (fork)
        runner.setWarmupFork(true, opt.ckptDir);
    if (!opt.phaseTracePath.empty())
        runner.setPhaseTrace(opt.phaseTracePath);

    runner.setProgress(true);
    const auto results = runner.run(opt.jobs);

    std::size_t failed = 0;
    for (const auto &r : results)
        failed += r.ok ? 0 : 1;
    std::fprintf(stderr, "sweep complete: %zu jobs, %zu failed\n",
                 results.size(), failed);
    if (fork)
        std::fprintf(stderr,
                     "warmup-fork: %llu shared warm-ups executed\n",
                     static_cast<unsigned long long>(
                         runner.warmupsExecuted()));
    return failed == results.size() ? 1 : 0;
}
