/**
 * @file
 * trace_gen — export synthetic workload profiles as trace files.
 *
 * Produces dapsim trace files (see trace/trace_file.hh for the format)
 * from the named synthetic profiles, so users can inspect the streams
 * the simulator runs, post-process them with standard tools, or replay
 * them through `dapsim --trace`.
 *
 * Usage: trace_gen <workload-name> <records> [out.trace] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "trace/workloads.hh"

using namespace dapsim;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trace_gen <workload> <records> "
                     "[out.trace] [seed]\n       workloads: ");
        for (const auto &w : allWorkloads())
            std::fprintf(stderr, "%s ", w.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }
    const WorkloadProfile &w = workloadByName(argv[1]);
    const std::uint64_t n = std::strtoull(argv[2], nullptr, 10);
    const std::string out =
        argc > 3 ? argv[3] : (w.name + ".trace");
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

    auto gen = makeGenerator(w, 0, seed);
    std::vector<TraceRequest> records;
    records.reserve(n);
    TraceRequest r;
    for (std::uint64_t i = 0; i < n && gen->next(r); ++i)
        records.push_back(r);

    writeTraceFile(out, records);
    std::printf("wrote %zu records of '%s' to %s\n", records.size(),
                w.name.c_str(), out.c_str());
    return 0;
}
