/**
 * @file
 * trace_gen — export synthetic workloads as trace files.
 *
 * Produces dapsim trace files (see trace/trace_file.hh for the format)
 * from the named synthetic profiles or from workload-engine specs
 * (zipf:skew=0.99,fp=64M — see src/workload/spec.hh), so users can
 * inspect the streams the simulator runs, post-process them with
 * standard tools, or replay them through `dapsim --trace`.
 *
 * Usage: trace_gen [--list] <workload-or-spec> <records> [out.trace]
 *                  [seed]
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "workload/compose.hh"
#include "workload/spec.hh"

using namespace dapsim;

namespace
{

void
listWorkloads()
{
    std::printf("profiles:\n");
    for (const auto &w : allWorkloads())
        std::printf("  %-18s fp=%lluM hot=%.2f p=%.2f stream=%.2f "
                    "run=%.1f write=%.2f mpki=%.0f\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(
                        w.params.footprintBytes / kMiB),
                    w.params.hotFraction, w.params.hotProbability,
                    w.params.streamFraction, w.params.runLength,
                    w.params.writeFraction, w.params.mpki);
    std::printf("workload-engine specs (kind:key=value,...):\n");
    for (const auto &info : workload::specInfos()) {
        std::printf("  %-18s %s\n", info.kind, info.help);
        for (const auto &p : info.params)
            std::printf("    %-16s %s\n", p.key, p.help);
    }
}

/** Filesystem-safe default output name for spec workloads. */
std::string
defaultOut(const std::string &workload)
{
    std::string out = workload;
    for (char &c : out)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '.'))
            c = '_';
    return out + ".trace";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "--list") {
        listWorkloads();
        return 0;
    }
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trace_gen [--list] <workload-or-spec> "
                     "<records> [out.trace] [seed]\n"
                     "       trace_gen --list   show profiles and spec "
                     "schemas\n");
        return 1;
    }
    const std::string name = argv[1];
    const std::uint64_t n = std::strtoull(argv[2], nullptr, 10);
    const std::string out = argc > 3 ? argv[3] : defaultOut(name);
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

    // Compose onto one core: the emitted stream is exactly what core 0
    // of a rate mix of this workload would issue. Mix specs work too —
    // core 0 runs the first tenant.
    const workload::ComposedMix cm =
        workload::composeWorkload(name, 1);
    auto gen = makeGenerator(cm.mix.apps[0], 0, seed);

    std::vector<TraceRequest> records;
    records.reserve(n);
    TraceRequest r;
    for (std::uint64_t i = 0; i < n && gen->next(r); ++i)
        records.push_back(r);

    writeTraceFile(out, records);
    std::printf("wrote %zu records of '%s' to %s\n", records.size(),
                cm.mix.name.c_str(), out.c_str());
    return 0;
}
