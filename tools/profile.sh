#!/bin/sh
# Profile the pinned fig12 end-to-end scenario with gprofng (binutils;
# `perf` is not assumed). Builds the Release tree if needed, records
# N repetitions of the e2e run, and prints the hottest functions.
#
# Usage: tools/profile.sh [REPS] [BUILD_DIR]
#   REPS      e2e repetitions to record (default 60; more reps, more
#             samples — each rep is ~120 ms of simulation)
#   BUILD_DIR Release build directory (default build-rel)
#
# Output: gprofng experiment under ./prof-e2e.er (overwritten) and a
# function-level CPU-time table on stdout. Drill down with e.g.
#   gprofng display text -calltree prof-e2e.er
#   gprofng display text -source dapsim::Channel::kick prof-e2e.er

set -eu

REPS="${1:-60}"
BUILD="${2:-build-rel}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/$BUILD/bench/kernel_events"
EXP="$ROOT/prof-e2e.er"

command -v gprofng >/dev/null 2>&1 || {
    echo "profile.sh: gprofng not found (install binutils)" >&2
    exit 1
}

if [ ! -x "$BIN" ]; then
    echo "profile.sh: building $BUILD (Release) ..." >&2
    cmake -B "$ROOT/$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$ROOT/$BUILD" --target kernel_events -j "$(nproc)"
fi

rm -rf "$EXP"
echo "profile.sh: recording $REPS e2e reps ..." >&2
gprofng collect app -o "$EXP" \
    "$BIN" --e2e-only --e2e-reps "$REPS" --out /dev/null >/dev/null

gprofng display text -functions "$EXP"
