/**
 * @file
 * dapsim — command-line simulation driver.
 *
 * Runs one simulation from the command line and prints the headline
 * metrics (optionally a full gem5-style stats dump). Workloads are
 * either named synthetic profiles (rate mode) or trace files.
 *
 * Examples:
 *   dapsim --workload mcf --policy dap
 *   dapsim --arch alloy --policy bear --instr 200000 --stats
 *   dapsim --trace mem.trace --cores 4 --policy dap
 *   dapsim --arch edram --capacity-mb 8 --workload hpcg
 *   dapsim --workload mcf --save-ckpt warm.ckpt
 *   dapsim --workload mcf --policy dap --restore-ckpt warm.ckpt
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "ckpt/checkpoint.hh"
#include "sim/fidelity_runner.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "trace/mixes.hh"
#include "trace/trace_file.hh"
#include "workload/compose.hh"
#include "workload/spec.hh"

using namespace dapsim;

namespace
{

struct Options
{
    std::string arch = "sectored";
    std::string policy = "baseline";
    std::string workload = "mcf";
    std::string trace;
    std::uint32_t cores = 8;
    std::uint64_t instr = 120'000;
    std::uint64_t capacityMb = 0; // 0 = preset default
    Cycle window = 64;
    double efficiency = 0.75;
    std::uint64_t seed = 0;
    std::string saveCkpt;
    std::string restoreCkpt;
    std::uint32_t ckptFormat = ckpt::kVersion;
    bool stats = false;
    bool remote = false;
    double remoteScale = 4.0;
    double remoteLatencyNs = 120.0;
    std::uint32_t remoteOutstanding = 32;
    std::string fidelity = "exact";
    std::uint64_t fidelityDetail = 0;
    std::uint64_t fidelityPeriod = 0;
    obs::ObsConfig obs{};
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: dapsim [options]\n"
        "  --arch sectored|alloy|edram|none   MS$ architecture\n"
        "  --policy baseline|dap|sbd|sbd-wt|batman|bear\n"
        "  --workload NAME      synthetic profile or workload-engine\n"
        "                       spec, e.g. zipf:skew=0.99,fp=64M or\n"
        "                       mix:t0=zipf,t0.cores=4,t1=flood\n"
        "                       (see --list)\n"
        "  --trace FILE         drive every core from a trace file\n"
        "  --cores N            core count (default 8)\n"
        "  --instr N            instructions per core (default 120000)\n"
        "  --capacity-mb N      override MS$ capacity\n"
        "  --window W           DAP window in CPU cycles (default 64)\n"
        "  --efficiency E       DAP bandwidth efficiency (default 0.75)\n"
        "  --seed N             workload seed salt\n"
        "  --fidelity MODE      exact (default) | sampled | analytic\n"
        "  --fidelity-detail N  sampled: detailed instructions per "
        "core\n"
        "                       per period (default 2000)\n"
        "  --fidelity-period N  sampled: sampling period in "
        "instructions\n"
        "                       per core (default 10000)\n"
        "  --remote             enable the remote bandwidth tier\n"
        "  --remote-scale S     remote BW = DDR BW / S (default 4)\n"
        "  --remote-latency-ns N  remote latency adder (default 120)\n"
        "  --remote-outstanding N remote credit window (default 32)\n"
        "  --save-ckpt FILE     snapshot the post-warmup state to FILE\n"
        "  --restore-ckpt FILE  skip warm-up; restore the state from "
        "FILE\n"
        "  --ckpt-format v1|v2  encoding for --save-ckpt (default v2:\n"
        "                       bulk-span, memcpy restore; v1 = legacy\n"
        "                       per-primitive stream)\n"
        "  --sample-every N     sample stats every N CPU cycles\n"
        "  --sample-out FILE    time-series output (with "
        "--sample-every)\n"
        "  --sample-format F    jsonl (default) or csv\n"
        "  --dap-trace FILE     per-window DAP decision trace (JSONL)\n"
        "  --chrome-trace FILE  Chrome trace_event JSON (Perfetto)\n"
        "  --stats              dump full statistics\n"
        "  --list               list workload profiles\n");
    std::exit(1);
}

PolicyKind
parsePolicy(const std::string &s)
{
    if (s == "baseline")
        return PolicyKind::Baseline;
    if (s == "dap")
        return PolicyKind::Dap;
    if (s == "sbd")
        return PolicyKind::Sbd;
    if (s == "sbd-wt")
        return PolicyKind::SbdWt;
    if (s == "batman")
        return PolicyKind::Batman;
    if (s == "bear")
        return PolicyKind::Bear;
    fatal("unknown policy: " + s);
}

SystemConfig
buildConfig(const Options &opt)
{
    SystemConfig cfg;
    if (opt.arch == "sectored") {
        cfg = presets::sectoredSystem8();
        if (opt.capacityMb)
            cfg.sectored.capacityBytes = opt.capacityMb * kMiB;
    } else if (opt.arch == "alloy") {
        cfg = presets::alloySystem8();
        if (opt.capacityMb)
            cfg.alloy.capacityBytes = opt.capacityMb * kMiB;
    } else if (opt.arch == "edram") {
        cfg = presets::edramSystem8(opt.capacityMb ? opt.capacityMb : 4);
    } else if (opt.arch == "none") {
        cfg = presets::sectoredSystem8();
        cfg.arch = MsArch::None;
        cfg.warmupAccessesPerCore = 1;
    } else {
        fatal("unknown arch: " + opt.arch);
    }
    cfg.numCores = opt.cores;
    cfg.core.instructions = opt.instr;
    cfg.windowCycles = opt.window;
    cfg.dap.efficiency = opt.efficiency;
    cfg.policy = parsePolicy(opt.policy);
    cfg.remote.enabled = opt.remote;
    cfg.remote.bwScaleFactor = opt.remoteScale;
    cfg.remote.addLatencyNs = opt.remoteLatencyNs;
    cfg.remote.maxOutstanding = opt.remoteOutstanding;
    if (!fidelityModeFromName(opt.fidelity, cfg.fidelity.mode))
        fatal("unknown fidelity: " + opt.fidelity);
    if (opt.fidelityDetail)
        cfg.fidelity.detailInstr = opt.fidelityDetail;
    if (opt.fidelityPeriod)
        cfg.fidelity.periodInstr = opt.fidelityPeriod;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--arch")
            opt.arch = value();
        else if (a == "--policy")
            opt.policy = value();
        else if (a == "--workload")
            opt.workload = value();
        else if (a == "--trace")
            opt.trace = value();
        else if (a == "--cores")
            opt.cores = static_cast<std::uint32_t>(
                std::stoul(value()));
        else if (a == "--instr")
            opt.instr = std::stoull(value());
        else if (a == "--capacity-mb")
            opt.capacityMb = std::stoull(value());
        else if (a == "--window")
            opt.window = std::stoull(value());
        else if (a == "--efficiency")
            opt.efficiency = std::stod(value());
        else if (a == "--seed")
            opt.seed = std::stoull(value());
        else if (a == "--fidelity")
            opt.fidelity = value();
        else if (a == "--fidelity-detail")
            opt.fidelityDetail = std::stoull(value());
        else if (a == "--fidelity-period")
            opt.fidelityPeriod = std::stoull(value());
        else if (a == "--remote")
            opt.remote = true;
        else if (a == "--remote-scale")
            opt.remoteScale = std::stod(value());
        else if (a == "--remote-latency-ns")
            opt.remoteLatencyNs = std::stod(value());
        else if (a == "--remote-outstanding")
            opt.remoteOutstanding = static_cast<std::uint32_t>(
                std::stoul(value()));
        else if (a == "--save-ckpt")
            opt.saveCkpt = value();
        else if (a == "--restore-ckpt")
            opt.restoreCkpt = value();
        else if (a == "--ckpt-format") {
            const std::string v = value();
            if (v == "v1")
                opt.ckptFormat = ckpt::kVersionV1;
            else if (v == "v2")
                opt.ckptFormat = ckpt::kVersionV2;
            else
                fatal("--ckpt-format must be v1 or v2");
        }
        else if (a == "--sample-every")
            opt.obs.sampleEvery = std::stoull(value());
        else if (a == "--sample-out")
            opt.obs.sampleOut = value();
        else if (a == "--sample-format") {
            const std::string f = value();
            if (f == "jsonl")
                opt.obs.sampleFormat = obs::SampleFormat::Jsonl;
            else if (f == "csv")
                opt.obs.sampleFormat = obs::SampleFormat::Csv;
            else
                fatal("--sample-format expects jsonl or csv");
        } else if (a == "--dap-trace")
            opt.obs.dapTrace = value();
        else if (a == "--chrome-trace")
            opt.obs.chromeTrace = value();
        else if (a == "--stats")
            opt.stats = true;
        else if (a == "--list") {
            std::printf("profiles:\n");
            for (const auto &w : allWorkloads())
                std::printf("  %-18s %s\n", w.name.c_str(),
                            w.bandwidthSensitive
                                ? "bandwidth-sensitive"
                                : "bandwidth-insensitive");
            std::printf("workload-engine specs "
                        "(kind:key=value,...):\n");
            for (const auto &info : workload::specInfos()) {
                std::printf("  %-18s %s\n", info.kind, info.help);
                for (const auto &p : info.params)
                    std::printf("    %-16s %s\n", p.key, p.help);
            }
            return 0;
        } else {
            usage();
        }
    }

    if (!opt.saveCkpt.empty() && !opt.restoreCkpt.empty())
        fatal("--save-ckpt and --restore-ckpt are mutually exclusive");
    if ((opt.obs.sampleEvery != 0) != !opt.obs.sampleOut.empty())
        fatal("--sample-every and --sample-out must be used together");

    SystemConfig cfg = buildConfig(opt);
    cfg.obs = opt.obs;

    std::vector<AccessGeneratorPtr> gens;
    std::string mix_name;
    std::string stream_desc;
    if (!opt.trace.empty()) {
        mix_name = opt.trace;
        stream_desc = "trace:" + opt.trace;
        for (std::uint32_t i = 0; i < cfg.numCores; ++i)
            gens.push_back(std::make_unique<TraceFileGenerator>(
                opt.trace, static_cast<Addr>(i) << 40));
    } else {
        const workload::ComposedMix cm =
            workload::composeWorkload(opt.workload, cfg.numCores);
        mix_name = cm.mix.name;
        stream_desc = ckpt::describeMix(cm.mix);
        // Tenant attribution only for engine specs; classic profile
        // runs keep their exact historical stats row set.
        if (workload::looksLikeSpec(opt.workload))
            cfg.obs.coreTenants = cm.coreTenants;
        for (std::uint32_t i = 0; i < cfg.numCores; ++i)
            gens.push_back(makeGenerator(cm.mix.apps[i], i, opt.seed));
    }

    // Both hashes come from the PRE-construction configuration (the
    // System constructor derives fields in its own copy).
    const std::uint64_t warm = ckpt::resolveWarmCount(cfg);
    const std::uint64_t state_hash =
        ckpt::stateHash(cfg, stream_desc, opt.seed, warm);
    const std::uint64_t full_hash = ckpt::fullHash(state_hash, cfg);

    System sys(cfg, std::move(gens));
    try {
        if (!opt.restoreCkpt.empty()) {
            // Mapped read: v2 payload arrays restore by memcpy straight
            // out of the page cache (v1 streams decode from it too).
            const ckpt::CheckpointView c =
                ckpt::readFileMapped(opt.restoreCkpt);
            if (c.header.stateHash != state_hash)
                throw ckpt::CkptError(
                    "ckpt: configuration/stream mismatch (the "
                    "checkpoint was taken under a different system "
                    "configuration, workload, seed or warm-up "
                    "length)");
            if (c.header.fullHash != full_hash)
                throw ckpt::CkptError(
                    "ckpt: policy mismatch (the checkpoint was taken "
                    "under a different partitioning policy)");
            ckpt::Deserializer d(c.payload, c.payloadSize,
                                 c.header.version);
            sys.restore(d);
            if (!d.atEnd())
                throw ckpt::CkptError(
                    "ckpt: trailing bytes after the last section");
            std::printf("restored %s (%llu warm-up accesses/core)\n",
                        opt.restoreCkpt.c_str(),
                        static_cast<unsigned long long>(
                            c.header.warmupPerCore));
        } else {
            sys.warmup(warm);
            if (!opt.saveCkpt.empty()) {
                ckpt::CheckpointHeader h;
                h.stateHash = state_hash;
                h.fullHash = full_hash;
                h.seedSalt = opt.seed;
                h.warmupPerCore = warm;
                h.instr = opt.instr;
                h.numCores = cfg.numCores;
                h.archId = ckpt::archIdOf(cfg.arch);
                ckpt::writeFile(opt.saveCkpt,
                                ckpt::capture(sys, h, opt.ckptFormat));
                std::printf("saved %s (%llu warm-up accesses/core)\n",
                            opt.saveCkpt.c_str(),
                            static_cast<unsigned long long>(warm));
            }
        }
    } catch (const ckpt::CkptError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    const RunResult r = runFidelityOn(sys, mix_name, opt.instr);
    std::printf("mix %s  arch %s  policy %s  seed %llu\n",
                mix_name.c_str(), opt.arch.c_str(),
                r.policyName.c_str(),
                static_cast<unsigned long long>(opt.seed));
    std::printf("throughput %.3f IPC  cycles %llu\n", r.throughput(),
                static_cast<unsigned long long>(r.cycles));
    std::printf("MS$ hit ratio %.3f  MM CAS fraction %.3f  "
                "L3 read-miss latency %.1f ns\n",
                r.msHitRatio, r.mmCasFraction,
                r.avgL3ReadMissLatency / 1000.0);
    if (r.fidelity.valid)
        std::printf("fidelity %s  windows %llu  detail %.1f%%  "
                    "IPC %.3f +/- %.3f\n",
                    r.fidelity.mode.c_str(),
                    static_cast<unsigned long long>(
                        r.fidelity.windows),
                    r.fidelity.detailFraction * 100.0,
                    r.fidelity.ipcMean, r.fidelity.ipcCiHalf);
    if (r.fwb + r.wb + r.ifrm + r.sfrm > 0)
        std::printf("DAP decisions: FWB %llu WB %llu IFRM %llu "
                    "SFRM %llu\n",
                    static_cast<unsigned long long>(r.fwb),
                    static_cast<unsigned long long>(r.wb),
                    static_cast<unsigned long long>(r.ifrm),
                    static_cast<unsigned long long>(r.sfrm));
    if (opt.stats) {
        std::printf("---- stats ----\n");
        sys.dumpStats(std::cout);
    }
    return 0;
}
