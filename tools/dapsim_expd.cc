/**
 * @file
 * dapsim_expd — the persistent experiment service CLI.
 *
 * Drives a durable `dapsim.expq.v1` store (see src/expd/store.hh):
 *
 *   submit       expand a grid and persist it as a new store
 *   run          execute (a shard of) the store's pending jobs
 *   resume       after a crash: replay the ledger, re-verify result
 *                rows, and run every job still pending
 *   status       per-worker progress, ETA, failed-job diagnostics
 *   merge        write the verbatim result rows in grid order —
 *                byte-identical to a serial `dapsim_sweep --json`
 *   retry-failed clear failure records so workers re-run those jobs
 *
 * Workers may run concurrently on any machines sharing the store
 * directory; a SIGKILLed worker's leases expire and its jobs return
 * to pending, while its completed jobs stay durable.
 *
 * Examples:
 *   dapsim_expd submit --store out/q --workload all --policy dap
 *   dapsim_expd run --store out/q --shard 0/2 &
 *   dapsim_expd run --store out/q --shard 1/2 &
 *   dapsim_expd status --store out/q
 *   dapsim_expd resume --store out/q
 *   dapsim_expd merge --store out/q --out results.jsonl
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/fsio.hh"
#include "common/log.hh"
#include "expd/store.hh"
#include "expd/worker.hh"

#include <unistd.h>

using namespace dapsim;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: dapsim_expd COMMAND --store DIR [options]\n"
        "commands:\n"
        "  submit        create a store from a sweep grid\n"
        "    --arch/--policy/--workload/--capacity-mb/--cores/--instr/"
        "\n"
        "    --seed/--warmup/--remote*/--fidelity* : as in "
        "dapsim_sweep\n"
        "  run           execute pending jobs\n"
        "    --shard i/N   run only jobs with index %% N == i "
        "(default 0/1)\n"
        "    --jobs K      stop after K executed jobs\n"
        "    --id W        ledger writer id (default w<pid>)\n"
        "    --lease-ttl S lease heartbeat TTL seconds (default 60)\n"
        "    --progress    per-job progress lines on stderr\n"
        "  resume        run everything still pending after a crash\n"
        "                (verifies recorded result rows first)\n"
        "  status        progress, per-worker counts, ETA, failures\n"
        "  merge         print result rows in grid order\n"
        "    --out FILE    write to FILE instead of stdout\n"
        "  retry-failed  clear failure records for re-execution\n");
    std::exit(1);
}

std::uint64_t
parseNumber(const std::string &flag, const std::string &s)
{
    if (s.empty())
        fatal(flag + " expects a number");
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        fatal(flag + " expects a number, got '" + s + "'");
    return v;
}

/** Parse "i/N" into shard index/count. */
void
parseShard(const std::string &s, std::size_t &index,
           std::size_t &count)
{
    const std::size_t slash = s.find('/');
    if (slash == std::string::npos)
        fatal("--shard expects i/N, got '" + s + "'");
    index = parseNumber("--shard", s.substr(0, slash));
    count = parseNumber("--shard", s.substr(slash + 1));
    if (count == 0 || index >= count)
        fatal("--shard expects i < N");
}

int
cmdStatus(const expd::Store &store)
{
    const expd::Replay replay = store.replay();
    const std::size_t total = store.jobs().size();
    const std::size_t done =
        replay.countState(expd::JobState::State::Done);
    const std::size_t failed =
        replay.countState(expd::JobState::State::Failed);
    const std::size_t pending = total - done - failed;
    std::size_t leased = 0;
    for (std::size_t i = 0; i < total; ++i)
        leased += store.leased(i) ? 1 : 0;

    std::printf("store: %s\n", store.dir().c_str());
    std::printf("jobs: %zu total, %zu done, %zu failed, %zu pending "
                "(%zu leased)\n",
                total, done, failed, pending, leased);
    if (replay.droppedTornTail)
        std::printf("note: a torn trailing ledger record was dropped "
                    "(crashed writer)\n");

    for (const auto &[worker, count] : replay.doneByWorker)
        std::printf("  worker %-16s %llu done\n", worker.c_str(),
                    static_cast<unsigned long long>(count));

    if (done >= 2 && pending > 0 &&
        replay.lastDoneAt > replay.firstDoneAt) {
        const double rate =
            static_cast<double>(done - 1) /
            (replay.lastDoneAt - replay.firstDoneAt);
        std::printf("eta: %.0f s for %zu pending jobs (%.2f jobs/s "
                    "observed)\n",
                    static_cast<double>(pending) / rate, pending,
                    rate);
    }

    for (std::size_t i = 0; i < total; ++i) {
        const expd::JobState &job = replay.jobs[i];
        if (job.state != expd::JobState::State::Failed)
            continue;
        std::printf("failed job %zu (%s): %s\n  stderr: %s\n", i,
                    store.jobs()[i].spec.displayLabel().c_str(),
                    job.error.c_str(), store.stderrPath(i).c_str());
    }
    return failed > 0 ? 2 : (pending > 0 ? 1 : 0);
}

int
cmdMerge(const expd::Store &store, const std::string &out_path)
{
    const std::vector<std::string> rows =
        store.mergedRows(store.replay());
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!out_path.empty()) {
        file.open(out_path, std::ios::binary);
        if (!file)
            fatal("cannot open " + out_path + " for writing");
        os = &file;
    }
    for (const std::string &row : rows)
        *os << row << '\n';
    os->flush();
    if (!*os)
        fatal("merge: write failed");
    return 0;
}

int
cmdRetryFailed(const expd::Store &store)
{
    const expd::Replay replay = store.replay();
    fsio::AppendFile events(store.eventsPath(
        "retry" + std::to_string(::getpid())));
    std::size_t cleared = 0;
    for (std::size_t i = 0; i < replay.jobs.size(); ++i) {
        const expd::JobState &job = replay.jobs[i];
        if (job.state != expd::JobState::State::Failed)
            continue;
        // One retry record per outstanding failure so the count rule
        // (failed > retries => failed) flips the job back to pending.
        for (std::uint64_t k = job.retries; k < job.failures; ++k)
            events.append(expd::retryRecord(i));
        ++cleared;
    }
    std::printf("retry-failed: %zu jobs returned to pending\n",
                cleared);
    return 0;
}

int
cmdResume(const expd::Store &store, expd::WorkerOptions opt)
{
    // Replay and re-verify every recorded result row against the
    // manifest before running anything new — resume refuses to extend
    // a store whose history is already inconsistent.
    const expd::Replay replay = store.replay();
    std::size_t verified = 0;
    for (std::size_t i = 0; i < replay.jobs.size(); ++i) {
        const expd::JobState &job = replay.jobs[i];
        if (job.row.empty())
            continue;
        store.verifyRow(i, job.row);
        ++verified;
    }
    std::fprintf(stderr,
                 "resume: %zu recorded rows verified, %zu jobs "
                 "pending%s\n",
                 verified,
                 replay.countState(expd::JobState::State::Pending),
                 replay.droppedTornTail
                     ? " (dropped a torn trailing record)"
                     : "");

    opt.shardIndex = 0;
    opt.shardCount = 1;
    if (opt.workerId.empty())
        opt.workerId = "resume" + std::to_string(::getpid());
    const expd::WorkerStats stats = expd::runWorker(opt);
    std::fprintf(stderr,
                 "resume: %llu executed, %llu failed, %llu skipped\n",
                 static_cast<unsigned long long>(stats.executed),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.skipped));

    const expd::Replay after = store.replay();
    return after.countState(expd::JobState::State::Pending) == 0 ? 0
                                                                 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];

    expd::GridOptions grid;
    expd::WorkerOptions worker;
    std::string store_dir;
    std::string out_path;

    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--store")
            store_dir = value();
        else if (a == "--arch")
            grid.archs = expd::splitList(value());
        else if (a == "--policy")
            grid.policies = expd::splitList(value());
        else if (a == "--workload")
            grid.workloads = expd::splitWorkloadList(value());
        else if (a == "--capacity-mb") {
            grid.capacitiesMb.clear();
            for (const auto &c : expd::splitList(value()))
                grid.capacitiesMb.push_back(parseNumber(a, c));
        } else if (a == "--cores")
            grid.cores =
                static_cast<std::uint32_t>(parseNumber(a, value()));
        else if (a == "--instr")
            grid.instr = parseNumber(a, value());
        else if (a == "--seed")
            grid.seed = parseNumber(a, value());
        else if (a == "--warmup")
            grid.warmup = parseNumber(a, value());
        else if (a == "--fidelity")
            grid.fidelity = value();
        else if (a == "--fidelity-detail")
            grid.fidelityDetail = parseNumber(a, value());
        else if (a == "--fidelity-period")
            grid.fidelityPeriod = parseNumber(a, value());
        else if (a == "--remote")
            grid.remote = true;
        else if (a == "--remote-scale")
            grid.remoteScale = std::stod(value());
        else if (a == "--remote-latency-ns")
            grid.remoteLatencyNs = std::stod(value());
        else if (a == "--remote-outstanding")
            grid.remoteOutstanding =
                static_cast<std::uint32_t>(parseNumber(a, value()));
        else if (a == "--shard")
            parseShard(value(), worker.shardIndex, worker.shardCount);
        else if (a == "--jobs")
            worker.maxJobs = parseNumber(a, value());
        else if (a == "--id")
            worker.workerId = value();
        else if (a == "--lease-ttl")
            worker.leaseTtlSec = std::stod(value());
        else if (a == "--progress")
            worker.progress = true;
        else if (a == "--out")
            out_path = value();
        else
            usage();
    }
    if (store_dir.empty())
        fatal("dapsim_expd: --store DIR is required");
    worker.storeDir = store_dir;

    try {
        if (cmd == "submit") {
            const expd::Store store =
                expd::Store::create(store_dir, grid);
            std::printf("submitted %zu jobs to %s\n",
                        store.jobs().size(), store_dir.c_str());
            return 0;
        }
        if (cmd == "run") {
            const expd::WorkerStats stats = expd::runWorker(worker);
            std::fprintf(
                stderr,
                "worker done: %llu executed, %llu failed, %llu "
                "skipped, %llu warmups executed, %llu reused\n",
                static_cast<unsigned long long>(stats.executed),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.skipped),
                static_cast<unsigned long long>(
                    stats.warmupsExecuted),
                static_cast<unsigned long long>(stats.warmupsReused));
            return 0;
        }
        const expd::Store store = expd::Store::open(store_dir);
        if (cmd == "status")
            return cmdStatus(store);
        if (cmd == "merge")
            return cmdMerge(store, out_path);
        if (cmd == "retry-failed")
            return cmdRetryFailed(store);
        if (cmd == "resume")
            return cmdResume(store, worker);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
    usage();
}
